// Serving-workload specs: the declarative description of an open-loop
// MoE/transformer serving experiment — how many chiplet dies, the
// per-layer command DAG a request executes (attention, MoE dispatch /
// expert-compute / combine, FFN), where each expert lives, the arrival
// process and the offered-load sweep. internal/serving builds and runs
// the system; this file owns parsing, validation and canonicalization so
// the CLI and the nocd daemon agree byte-for-byte on what a spec means.
package config

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// Serving layer kinds.
const (
	LayerAttention = "attention"
	LayerMoE       = "moe"
	LayerFFN       = "ffn"
)

// ServingLayerSpec describes one layer of the per-request command DAG.
type ServingLayerSpec struct {
	// Kind is "attention", "moe" or "ffn".
	Kind string `json:"kind"`
	// Deps lists the layer indices whose completion gates this layer.
	// Empty means the previous layer (a plain chain); explicit entries
	// express wider DAGs — parallel branches, skip connections. The
	// resulting layer graph must be acyclic.
	Deps []int `json:"deps,omitempty"`
	// ComputeCycles models the layer's arithmetic after its operands
	// arrive (an expert's compute for MoE layers).
	ComputeCycles int `json:"computeCycles,omitempty"`
	// Bytes is the activation transfer the layer moves over the NoC: a
	// weight read for attention/FFN, the per-expert dispatch and combine
	// payload for MoE.
	Bytes int `json:"bytes,omitempty"`

	// MoE-only fields.
	// Experts is the expert population of a MoE layer.
	Experts int `json:"experts,omitempty"`
	// FanOut is how many experts each batch routes to (top-k).
	FanOut int `json:"fanOut,omitempty"`
	// ExpertDies maps each expert to a die; empty round-robins experts
	// across dies (the all-to-all expert-parallel placement).
	ExpertDies []int `json:"expertDies,omitempty"`
	// ExpertBytes is the weight read an activated expert performs on its
	// own die before computing.
	ExpertBytes int `json:"expertBytes,omitempty"`
}

// ServingArrivalSpec selects the open-loop arrival process.
type ServingArrivalSpec struct {
	// Process is "poisson" (memoryless) or "bursty" (Markov-modulated
	// on/off: exponential-ish on and off sojourns, all arrivals during
	// on periods, same mean rate).
	Process string `json:"process,omitempty"`
	// BurstOn / BurstOff are the mean on/off sojourn lengths in cycles
	// for the bursty process.
	BurstOn  int `json:"burstOn,omitempty"`
	BurstOff int `json:"burstOff,omitempty"`
}

// ServingSpec is the whole experiment description. The zero value (or an
// empty JSON document) means "all defaults" once ApplyDefaults has run.
type ServingSpec struct {
	Name string `json:"name,omitempty"`
	Seed uint64 `json:"seed,omitempty"`
	// Dies is the chiplet count; each die carries one serving engine and
	// one local memory, joined through a hub ring by RBRG-L2 bridges.
	Dies int `json:"dies,omitempty"`
	// Layers is the command-DAG template every request executes.
	Layers []ServingLayerSpec `json:"layers,omitempty"`
	// Arrival selects the open-loop arrival process.
	Arrival ServingArrivalSpec `json:"arrival"`
	// Loads is the offered-load sweep in requests per 1000 cycles; each
	// entry runs one independent simulation.
	Loads []float64 `json:"loads,omitempty"`
	// Cycles is the per-load simulation window.
	Cycles uint64 `json:"cycles,omitempty"`
	// Batch is the number of requests grouped into one DAG execution.
	Batch int `json:"batch,omitempty"`
	// LowWatermark / HighWatermark govern batch streaming: when in-flight
	// batches drain to Low, the host streams new ones in until High (the
	// uPimulator double-buffering scheme at Low 1 / High 2).
	LowWatermark  int `json:"lowWatermark,omitempty"`
	HighWatermark int `json:"highWatermark,omitempty"`

	// Partitions / Lookahead tune the parallel tick engine. Both are
	// proven behaviour-neutral, excluded from cache identity like their
	// topology-config counterparts.
	Partitions int `json:"partitions,omitempty"`
	Lookahead  int `json:"lookahead,omitempty"`
}

// Construction limits for serving specs; the same spirit as the
// topology-config limits — a hostile spec must fail fast, not allocate.
const (
	MaxServingDies   = 16
	MaxServingLayers = 64
	MaxServingExpert = 32
	MaxServingLoads  = 32
	MaxServingCycles = 10_000_000
	MaxServingBatch  = 256
	MaxServingBytes  = 1 << 20
	maxServingLoad   = 10_000 // requests per kcycle; ≥ 10/cycle is nonsense
	maxSojourn       = 1_000_000
	maxComputeCycles = 1_000_000
)

// ParseServingSpec parses and validates an untrusted serving-spec
// document. Unknown fields, trailing garbage and structurally invalid
// specs (cyclic layer deps, experts on absent dies, zero-rate arrival
// sweeps) are errors; hostile bytes must never panic. Defaults are NOT
// applied — callers that run the spec call ApplyDefaults first and then
// Validate holds on the result too.
func ParseServingSpec(data []byte) (*ServingSpec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s ServingSpec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("serving spec: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return nil, fmt.Errorf("serving spec: trailing data after JSON document")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// ApplyDefaults fills every zero field with the reference workload: a
// four-die package running two transformer blocks (attention → 4-expert
// MoE → FFN) under Poisson arrivals, double-buffered batches. quick
// selects the CI-sized window and load sweep, !quick the paper-sized
// one. Idempotent, and the result always passes Validate.
func (s *ServingSpec) ApplyDefaults(quick bool) {
	if s.Name == "" {
		s.Name = "moe-serving"
	}
	if s.Dies == 0 {
		s.Dies = 4
	}
	if len(s.Layers) == 0 {
		block := []ServingLayerSpec{
			{Kind: LayerAttention, ComputeCycles: 32, Bytes: 1024},
			{Kind: LayerMoE, ComputeCycles: 48, Bytes: 512, Experts: 4, FanOut: 2, ExpertBytes: 1024},
			{Kind: LayerFFN, ComputeCycles: 24, Bytes: 1024},
		}
		s.Layers = append(append([]ServingLayerSpec{}, block...), block...)
	}
	for i := range s.Layers {
		l := &s.Layers[i]
		if l.Kind != LayerMoE {
			continue
		}
		if l.FanOut == 0 {
			l.FanOut = 1
			if l.Experts > 1 {
				l.FanOut = 2
			}
		}
		if l.ExpertBytes == 0 {
			l.ExpertBytes = 1024
		}
		if len(l.ExpertDies) == 0 {
			for e := 0; e < l.Experts; e++ {
				l.ExpertDies = append(l.ExpertDies, e%s.Dies)
			}
		}
	}
	if s.Arrival.Process == "" {
		s.Arrival.Process = "poisson"
	}
	if s.Arrival.Process == "bursty" {
		if s.Arrival.BurstOn == 0 {
			s.Arrival.BurstOn = 512
		}
		if s.Arrival.BurstOff == 0 {
			s.Arrival.BurstOff = 1536
		}
	}
	if len(s.Loads) == 0 {
		if quick {
			s.Loads = []float64{1, 4, 16, 64}
		} else {
			s.Loads = []float64{1, 2, 4, 8, 16, 32, 64, 128}
		}
	}
	if s.Cycles == 0 {
		if quick {
			s.Cycles = 8000
		} else {
			s.Cycles = 40000
		}
	}
	if s.Batch == 0 {
		s.Batch = 4
	}
	// Default to a 2/8 watermark pair: deep enough that the lightest
	// loads run unsaturated (the knee stays inside the sweep), shallow
	// enough that overload stalls are visible.
	if s.HighWatermark == 0 {
		if s.LowWatermark == 0 {
			s.LowWatermark = 2
		}
		s.HighWatermark = s.LowWatermark + 6
	}
	if s.LowWatermark == 0 && s.HighWatermark > 1 {
		s.LowWatermark = 1
	}
}

// Validate checks structural invariants. It holds both on freshly parsed
// documents (where zero fields mean "default me later") and on defaulted
// specs, so every admission path can call it.
func (s *ServingSpec) Validate() error {
	if s.Dies < 0 || s.Dies > MaxServingDies {
		return fmt.Errorf("serving spec: %d dies outside [0, %d]", s.Dies, MaxServingDies)
	}
	dies := s.Dies
	if dies == 0 {
		dies = 4 // the ApplyDefaults die count, for expert-map checks
	}
	if len(s.Layers) > MaxServingLayers {
		return fmt.Errorf("serving spec: %d layers exceed the %d-layer limit", len(s.Layers), MaxServingLayers)
	}
	for i := range s.Layers {
		if err := s.Layers[i].validate(i, len(s.Layers), dies); err != nil {
			return err
		}
	}
	if err := validateLayerDAG(s.Layers); err != nil {
		return err
	}
	switch s.Arrival.Process {
	case "", "poisson", "bursty":
	default:
		return fmt.Errorf("serving spec: unknown arrival process %q (want poisson or bursty)", s.Arrival.Process)
	}
	if s.Arrival.BurstOn < 0 || s.Arrival.BurstOn > maxSojourn ||
		s.Arrival.BurstOff < 0 || s.Arrival.BurstOff > maxSojourn {
		return fmt.Errorf("serving spec: burst sojourns outside [0, %d]", maxSojourn)
	}
	if len(s.Loads) > MaxServingLoads {
		return fmt.Errorf("serving spec: %d load points exceed the %d-point limit", len(s.Loads), MaxServingLoads)
	}
	for _, l := range s.Loads {
		// NaN fails every comparison, so it lands here too.
		if !(l > 0) || l > maxServingLoad {
			return fmt.Errorf("serving spec: offered load %v outside (0, %d] requests/kcycle", l, maxServingLoad)
		}
	}
	if s.Cycles > MaxServingCycles {
		return fmt.Errorf("serving spec: %d cycles exceed the %d-cycle limit", s.Cycles, MaxServingCycles)
	}
	if s.Batch < 0 || s.Batch > MaxServingBatch {
		return fmt.Errorf("serving spec: batch %d outside [0, %d]", s.Batch, MaxServingBatch)
	}
	if s.LowWatermark < 0 || s.HighWatermark < 0 {
		return fmt.Errorf("serving spec: negative watermark")
	}
	if s.HighWatermark > 64 || s.LowWatermark > 58 {
		return fmt.Errorf("serving spec: watermarks %d/%d exceed the 64-batch in-flight cap", s.LowWatermark, s.HighWatermark)
	}
	if s.HighWatermark != 0 && s.LowWatermark >= s.HighWatermark {
		return fmt.Errorf("serving spec: low watermark %d must be below high watermark %d", s.LowWatermark, s.HighWatermark)
	}
	if s.Partitions < -1 {
		return fmt.Errorf("serving spec: partitions %d invalid", s.Partitions)
	}
	if s.Lookahead < 0 {
		return fmt.Errorf("serving spec: negative lookahead")
	}
	return nil
}

func (l *ServingLayerSpec) validate(i, layers, dies int) error {
	switch l.Kind {
	case LayerAttention, LayerFFN:
		if l.Experts != 0 || l.FanOut != 0 || len(l.ExpertDies) != 0 || l.ExpertBytes != 0 {
			return fmt.Errorf("serving spec: layer %d (%s) sets MoE fields", i, l.Kind)
		}
	case LayerMoE:
		if l.Experts < 1 || l.Experts > MaxServingExpert {
			return fmt.Errorf("serving spec: layer %d has %d experts outside [1, %d]", i, l.Experts, MaxServingExpert)
		}
		if l.FanOut < 0 || l.FanOut > l.Experts {
			return fmt.Errorf("serving spec: layer %d fan-out %d outside [0, %d experts]", i, l.FanOut, l.Experts)
		}
		if len(l.ExpertDies) != 0 && len(l.ExpertDies) != l.Experts {
			return fmt.Errorf("serving spec: layer %d maps %d of %d experts to dies", i, len(l.ExpertDies), l.Experts)
		}
		for e, die := range l.ExpertDies {
			if die < 0 || die >= dies {
				return fmt.Errorf("serving spec: layer %d expert %d on absent die %d (have %d dies)", i, e, die, dies)
			}
		}
		if l.ExpertBytes < 0 || l.ExpertBytes > MaxServingBytes {
			return fmt.Errorf("serving spec: layer %d expert bytes %d outside [0, %d]", i, l.ExpertBytes, MaxServingBytes)
		}
	default:
		return fmt.Errorf("serving spec: layer %d has unknown kind %q", i, l.Kind)
	}
	if l.ComputeCycles < 0 || l.ComputeCycles > maxComputeCycles {
		return fmt.Errorf("serving spec: layer %d compute %d outside [0, %d]", i, l.ComputeCycles, maxComputeCycles)
	}
	if l.Bytes < 0 || l.Bytes > MaxServingBytes {
		return fmt.Errorf("serving spec: layer %d moves %d bytes outside [0, %d]", i, l.Bytes, MaxServingBytes)
	}
	for _, d := range l.Deps {
		if d < 0 || d >= layers {
			return fmt.Errorf("serving spec: layer %d depends on absent layer %d", i, d)
		}
		if d == i {
			return fmt.Errorf("serving spec: layer %d depends on itself", i)
		}
	}
	return nil
}

// validateLayerDAG rejects cyclic layer dependencies with Kahn's
// algorithm over the explicit-deps graph (the implicit previous-layer
// chain cannot form cycles).
func validateLayerDAG(layers []ServingLayerSpec) error {
	n := len(layers)
	indeg := make([]int, n)
	out := make([][]int, n)
	for i := range layers {
		for _, d := range layers[i].Deps {
			if d < 0 || d >= n || d == i {
				return nil // per-layer validation already rejected it
			}
			out[d] = append(out[d], i)
			indeg[i]++
		}
	}
	queue := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	done := 0
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		done++
		for _, j := range out[i] {
			if indeg[j]--; indeg[j] == 0 {
				queue = append(queue, j)
			}
		}
	}
	if done != n {
		return fmt.Errorf("serving spec: layer dependencies form a cycle")
	}
	return nil
}

// LayerDeps returns layer i's effective dependency list: the explicit
// Deps, or the previous layer for a chain. The first layer of a chain
// has none.
func (s *ServingSpec) LayerDeps(i int) []int {
	if len(s.Layers[i].Deps) > 0 {
		return s.Layers[i].Deps
	}
	if i == 0 {
		return nil
	}
	return []int{i - 1}
}

// CanonicalServingDoc re-renders a defaulted spec as the canonical JSON
// document (fixed struct field order, no indentation) that admission
// paths persist and hash.
func CanonicalServingDoc(s *ServingSpec) (string, error) {
	out, err := json.Marshal(s)
	if err != nil {
		return "", err
	}
	return string(out), nil
}

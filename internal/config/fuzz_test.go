package config

import (
	"os"
	"strings"
	"testing"
)

// FuzzBuild feeds arbitrary bytes through the Parse -> Build pipeline the
// cmd/nocsim -config path runs on untrusted files. The contract under
// test: malformed specs (bad ring sizes, duplicate attachments, unknown
// references, unreachable nodes, oversized fields) return an error and
// NEVER panic; well-formed specs build a runnable system.
//
//	go test ./internal/config -fuzz=FuzzBuild -fuzztime=30s
func FuzzBuild(f *testing.F) {
	// The shipped example topology is the richest well-formed seed.
	if data, err := os.ReadFile("../../examples/topologies/ai-mini.json"); err == nil {
		f.Add(data)
	}
	seeds := []string{
		// Minimal valid spec.
		`{"name":"s","rings":[{"name":"r","positions":4}],
		  "devices":[
		    {"name":"m","type":"memory","ring":"r","position":0,
		     "accessCycles":10,"bytesPerCycle":8,"queueDepth":4},
		    {"name":"c","type":"requester","ring":"r","position":1,"targets":["m"]}]}`,
		// Malformed ring count.
		`{"name":"s","rings":[{"name":"r","positions":1}]}`,
		`{"name":"s","rings":[{"name":"r","positions":-3}]}`,
		`{"name":"s","rings":[{"name":"r","positions":99999999}]}`,
		// Duplicate attachment at one station.
		`{"name":"s","rings":[{"name":"r","positions":4}],
		  "devices":[
		    {"name":"a","type":"memory","ring":"r","position":0,
		     "accessCycles":10,"bytesPerCycle":8,"queueDepth":4},
		    {"name":"b","type":"memory","ring":"r","position":0,
		     "accessCycles":10,"bytesPerCycle":8,"queueDepth":4}]}`,
		// Bridge legs on one ring (would double-attach the bridge node).
		`{"name":"s","rings":[{"name":"r","positions":6}],
		  "bridges":[{"name":"x","type":"rbrg-l2",
		    "stations":[{"ring":"r","position":0},{"ring":"r","position":3}]}]}`,
		// Unreachable ring: no bridge between the two rings.
		`{"name":"s","rings":[{"name":"a","positions":4},{"name":"b","positions":4}],
		  "devices":[
		    {"name":"m","type":"memory","ring":"a","position":0,
		     "accessCycles":10,"bytesPerCycle":8,"queueDepth":4},
		    {"name":"c","type":"requester","ring":"b","position":0,"targets":["m"]}]}`,
		// Unknown references and types.
		`{"name":"s","rings":[{"name":"r","positions":4}],
		  "devices":[{"name":"c","type":"requester","ring":"nope","position":0,"targets":["m"]}]}`,
		`{"name":"s","rings":[{"name":"r","positions":4}],
		  "devices":[{"name":"c","type":"quantum","ring":"r","position":0}]}`,
		// Not JSON at all.
		`]]]`,
		``,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := Parse(data)
		if err != nil {
			return // malformed JSON must simply report an error
		}
		sys, err := spec.Build()
		if err != nil {
			if sys != nil {
				t.Fatalf("Build returned both a system and error %v", err)
			}
			return // invalid topology must simply report an error
		}
		if sys == nil || sys.Net == nil {
			t.Fatal("Build returned a nil system without error")
		}
		// A successfully built system must be runnable.
		sys.Run(20)
	})
}

// TestBuildRejectsMalformedSpecs pins the loader's error behaviour on the
// fuzz corpus's deterministic cases — these run in every plain `go test`,
// not only under -fuzz.
func TestBuildRejectsMalformedSpecs(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string // substring of the expected error
	}{
		{"ring too small", `{"name":"s","rings":[{"name":"r","positions":1}]}`, "at least 2 positions"},
		{"ring too big", `{"name":"s","rings":[{"name":"r","positions":99999999}]}`, "limit"},
		{"duplicate attachment", `{"name":"s","rings":[{"name":"r","positions":4}],
			"devices":[
			  {"name":"a","type":"memory","ring":"r","position":0,"accessCycles":10,"bytesPerCycle":8,"queueDepth":4},
			  {"name":"b","type":"memory","ring":"r","position":0,"accessCycles":10,"bytesPerCycle":8,"queueDepth":4}]}`,
			"both attach"},
		{"bridge legs on one ring", `{"name":"s","rings":[{"name":"r","positions":6}],
			"bridges":[{"name":"x","type":"rbrg-l2","stations":[{"ring":"r","position":0},{"ring":"r","position":3}]}]}`,
			"two stations on ring"},
		{"unreachable memory", `{"name":"s","rings":[{"name":"a","positions":4},{"name":"b","positions":4}],
			"devices":[
			  {"name":"m","type":"memory","ring":"a","position":0,"accessCycles":10,"bytesPerCycle":8,"queueDepth":4},
			  {"name":"c","type":"requester","ring":"b","position":0,"targets":["m"]}]}`,
			"unreachable"},
		{"oversized outstanding", `{"name":"s","rings":[{"name":"r","positions":4}],
			"devices":[
			  {"name":"m","type":"memory","ring":"r","position":0,"accessCycles":10,"bytesPerCycle":8,"queueDepth":4},
			  {"name":"c","type":"requester","ring":"r","position":1,"outstanding":9999999,"targets":["m"]}]}`,
			"exceeds the limit"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			spec, err := Parse([]byte(c.json))
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			_, err = spec.Build()
			if err == nil {
				t.Fatal("Build accepted a malformed spec")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

package config

import (
	"io"

	"chipletnoc/internal/noc"
)

// WriteCheckpoint serializes the full system state in the shared
// checkpoint format; extra is an opaque caller blob returned verbatim by
// ReadCheckpoint. Config-built systems checkpoint exactly like the soc
// builds — same framing, same topology-hash gate.
func (s *System) WriteCheckpoint(w io.Writer, extra []byte) error {
	return noc.WriteCheckpoint(w, s.Net, extra)
}

// ReadCheckpoint restores a checkpoint into this freshly built system
// and returns the caller blob.
func (s *System) ReadCheckpoint(r io.Reader) ([]byte, error) {
	return noc.ReadCheckpoint(r, s.Net)
}

// Package config builds NoC systems from declarative JSON descriptions:
// rings, devices (traffic requesters and memory controllers) and ring
// bridges. It is the "Lego-like SoC" assembly workflow of Section 2.1 as
// a file format — cmd/nocsim -config runs one.
//
// Example:
//
//	{
//	  "name": "my-soc",
//	  "rings": [
//	    {"name": "compute", "positions": 16, "full": true},
//	    {"name": "memory", "positions": 8}
//	  ],
//	  "devices": [
//	    {"name": "core0", "type": "requester", "ring": "compute", "position": 0,
//	     "outstanding": 16, "rate": 1.0, "readFraction": 0.8, "targets": ["hbm0"]},
//	    {"name": "hbm0", "type": "memory", "ring": "memory", "position": 0,
//	     "accessCycles": 60, "bytesPerCycle": 167, "queueDepth": 64}
//	  ],
//	  "bridges": [
//	    {"name": "br0", "type": "rbrg-l2",
//	     "stations": [{"ring": "compute", "position": 15}, {"ring": "memory", "position": 7}]}
//	  ]
//	}
package config

import (
	"encoding/json"
	"fmt"
	"sort"

	"chipletnoc/internal/chi"
	"chipletnoc/internal/fault"
	"chipletnoc/internal/mem"
	"chipletnoc/internal/metrics"
	"chipletnoc/internal/noc"
	"chipletnoc/internal/sim"
	"chipletnoc/internal/traffic"
)

// RingSpec describes one ring.
type RingSpec struct {
	Name      string `json:"name"`
	Positions int    `json:"positions"`
	Full      bool   `json:"full"`
}

// StationRef names a station location.
type StationRef struct {
	Ring     string `json:"ring"`
	Position int    `json:"position"`
}

// DeviceSpec describes one endpoint device.
type DeviceSpec struct {
	Name     string `json:"name"`
	Type     string `json:"type"` // "requester" | "memory"
	Ring     string `json:"ring"`
	Position int    `json:"position"`

	// requester fields
	Outstanding  int      `json:"outstanding,omitempty"`
	Rate         float64  `json:"rate,omitempty"`
	ReadFraction float64  `json:"readFraction,omitempty"`
	LineBytes    int      `json:"lineBytes,omitempty"`
	Targets      []string `json:"targets,omitempty"`
	MaxRequests  uint64   `json:"maxRequests,omitempty"`
	// RetryTimeout/RetryMax arm CHI-level timeout and retry on this
	// requester (see chi.RetryConfig); zero timeout disables it.
	RetryTimeout int `json:"retryTimeout,omitempty"`
	RetryMax     int `json:"retryMax,omitempty"`

	// memory fields
	AccessCycles  int     `json:"accessCycles,omitempty"`
	BytesPerCycle float64 `json:"bytesPerCycle,omitempty"`
	QueueDepth    int     `json:"queueDepth,omitempty"`
}

// BridgeSpec describes one ring bridge.
type BridgeSpec struct {
	Name     string       `json:"name"`
	Type     string       `json:"type"` // "rbrg-l1" | "rbrg-l2"
	Stations []StationRef `json:"stations"`
}

// Spec is a whole system description.
type Spec struct {
	Name    string       `json:"name"`
	Seed    uint64       `json:"seed,omitempty"`
	Rings   []RingSpec   `json:"rings"`
	Devices []DeviceSpec `json:"devices"`
	Bridges []BridgeSpec `json:"bridges,omitempty"`
	// Faults is an optional deterministic fault schedule (see
	// internal/fault): bridge kills, station stalls, flit drops. An
	// absent or empty schedule changes nothing.
	Faults *fault.Schedule `json:"faults,omitempty"`
	// Partitions selects the tick engine: 0 or 1 is sequential, higher
	// counts advance ring groups concurrently, and -1 sizes the pool
	// automatically from the machine and the topology. Results are
	// bit-identical at every setting, so this is a speed knob, not a
	// semantic one — checkpoints taken at either setting resume at the
	// other.
	Partitions int `json:"partitions,omitempty"`
	// Lookahead caps the partitioned engine's superstep horizon in
	// cycles; 0 (the default) lets the engine derive it from the
	// topology's bridge pipeline depths. Behaviour-neutral like
	// Partitions.
	Lookahead int `json:"lookahead,omitempty"`
}

// Parse decodes a JSON spec.
func Parse(data []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	return &s, nil
}

// System is a built configuration ready to run.
type System struct {
	Net        *noc.Network
	Requesters map[string]*traffic.Requester
	Memories   map[string]*mem.Controller
	// Injector replays the spec's fault schedule (nil without one).
	Injector *fault.Injector
}

// Run advances the system n cycles on the configured engine
// (sequential, or partitioned when the spec set Partitions > 1).
func (s *System) Run(n int) {
	s.Net.Run(n)
}

// EnableMetrics attaches a metrics registry to the whole system: the
// network's standard probes plus every requester and memory controller,
// registered in sorted name order so series ordering is deterministic.
// A nil registry is a no-op; metrics never perturb the simulation.
func (s *System) EnableMetrics(reg *metrics.Registry) {
	if reg == nil {
		return
	}
	s.Net.EnableMetrics(reg)
	names := make([]string, 0, len(s.Requesters))
	for n := range s.Requesters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s.Requesters[n].RegisterMetrics(reg)
	}
	names = names[:0]
	for n := range s.Memories {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s.Memories[n].RegisterMetrics(reg)
	}
}

// Construction limits. Untrusted specs (cmd/nocsim -config takes
// arbitrary files) must fail with an error before they can exhaust
// memory or trip a topology panic deeper in the noc package.
const (
	MaxRings         = 64
	MaxRingPositions = 4096
	MaxDevices       = 4096
	MaxBridges       = 256
	MaxBridgeLegs    = 16
	MaxOutstanding   = 1 << 16
	MaxLineBytes     = 1 << 20
	MaxQueueDepth    = 1 << 20
)

// Build validates the spec and constructs the network. Invalid specs —
// malformed ring sizes, duplicate names, duplicate station attachments,
// unknown references, unreachable nodes — always return an error; Build
// never panics on untrusted input.
func (s *Spec) Build() (*System, error) {
	if s.Name == "" {
		return nil, fmt.Errorf("config: system needs a name")
	}
	if len(s.Rings) == 0 {
		return nil, fmt.Errorf("config: at least one ring required")
	}
	if len(s.Rings) > MaxRings {
		return nil, fmt.Errorf("config: %d rings exceeds the limit of %d", len(s.Rings), MaxRings)
	}
	if len(s.Devices) > MaxDevices {
		return nil, fmt.Errorf("config: %d devices exceeds the limit of %d", len(s.Devices), MaxDevices)
	}
	if len(s.Bridges) > MaxBridges {
		return nil, fmt.Errorf("config: %d bridges exceeds the limit of %d", len(s.Bridges), MaxBridges)
	}
	if s.Partitions < -1 {
		return nil, fmt.Errorf("config: partitions must be -1 (auto) or non-negative, got %d", s.Partitions)
	}
	if s.Lookahead < 0 {
		return nil, fmt.Errorf("config: lookahead must be non-negative, got %d", s.Lookahead)
	}
	net := noc.NewNetwork(s.Name)
	rings := make(map[string]*noc.Ring, len(s.Rings))
	for _, r := range s.Rings {
		if r.Name == "" {
			return nil, fmt.Errorf("config: ring needs a name")
		}
		if _, dup := rings[r.Name]; dup {
			return nil, fmt.Errorf("config: duplicate ring %q", r.Name)
		}
		if r.Positions < 2 {
			return nil, fmt.Errorf("config: ring %q needs at least 2 positions", r.Name)
		}
		if r.Positions > MaxRingPositions {
			return nil, fmt.Errorf("config: ring %q has %d positions, limit is %d",
				r.Name, r.Positions, MaxRingPositions)
		}
		rings[r.Name] = net.AddRing(r.Positions, r.Full)
	}

	// Each station hosts exactly one endpoint (device or bridge leg):
	// a second attachment at the same (ring, position) is a spec error,
	// not a panic out of the noc package.
	occupied := map[StationRef]string{}
	station := func(ref StationRef, owner string) (*noc.CrossStation, error) {
		ring, ok := rings[ref.Ring]
		if !ok {
			return nil, fmt.Errorf("config: unknown ring %q", ref.Ring)
		}
		if ref.Position < 0 || ref.Position >= ring.Positions() {
			return nil, fmt.Errorf("config: position %d outside ring %q (%d positions)",
				ref.Position, ref.Ring, ring.Positions())
		}
		if prev, dup := occupied[ref]; dup {
			return nil, fmt.Errorf("config: %s and %s both attach at ring %q position %d",
				prev, owner, ref.Ring, ref.Position)
		}
		occupied[ref] = owner
		if st := ring.Station(ref.Position); st != nil {
			return st, nil
		}
		return ring.AddStation(ref.Position), nil
	}

	sys := &System{
		Net:        net,
		Requesters: make(map[string]*traffic.Requester),
		Memories:   make(map[string]*mem.Controller),
	}

	// Memories first so requesters can reference them by name.
	type pendingRequester struct {
		spec DeviceSpec
		st   *noc.CrossStation
	}
	var pending []pendingRequester
	seen := map[string]bool{}
	for _, d := range s.Devices {
		if d.Name == "" {
			return nil, fmt.Errorf("config: device needs a name")
		}
		if seen[d.Name] {
			return nil, fmt.Errorf("config: duplicate device %q", d.Name)
		}
		seen[d.Name] = true
		st, err := station(StationRef{Ring: d.Ring, Position: d.Position}, "device "+d.Name)
		if err != nil {
			return nil, fmt.Errorf("config: device %q: %w", d.Name, err)
		}
		switch d.Type {
		case "memory":
			cfg := mem.Config{
				AccessCycles:  d.AccessCycles,
				BytesPerCycle: d.BytesPerCycle,
				QueueDepth:    d.QueueDepth,
			}
			if cfg.AccessCycles <= 0 || cfg.BytesPerCycle <= 0 || cfg.QueueDepth <= 0 {
				return nil, fmt.Errorf("config: memory %q needs accessCycles, bytesPerCycle and queueDepth", d.Name)
			}
			if cfg.QueueDepth > MaxQueueDepth {
				return nil, fmt.Errorf("config: memory %q queueDepth %d exceeds the limit of %d",
					d.Name, cfg.QueueDepth, MaxQueueDepth)
			}
			sys.Memories[d.Name] = mem.New(net, d.Name, cfg, st)
		case "requester":
			pending = append(pending, pendingRequester{spec: d, st: st})
		default:
			return nil, fmt.Errorf("config: device %q has unknown type %q", d.Name, d.Type)
		}
	}
	rng := sim.NewRNG(s.Seed ^ 0xC0F1)
	for i, p := range pending {
		d := p.spec
		if len(d.Targets) == 0 {
			return nil, fmt.Errorf("config: requester %q needs targets", d.Name)
		}
		nodes := make([]noc.NodeID, 0, len(d.Targets))
		for _, tname := range d.Targets {
			m, ok := sys.Memories[tname]
			if !ok {
				return nil, fmt.Errorf("config: requester %q targets unknown memory %q", d.Name, tname)
			}
			nodes = append(nodes, m.Node())
		}
		if d.Outstanding <= 0 {
			d.Outstanding = 8
		}
		if d.Outstanding > MaxOutstanding {
			return nil, fmt.Errorf("config: requester %q outstanding %d exceeds the limit of %d",
				d.Name, d.Outstanding, MaxOutstanding)
		}
		if d.Rate <= 0 {
			d.Rate = 1
		}
		line := d.LineBytes
		if line <= 0 {
			line = 64
		}
		if line > MaxLineBytes {
			return nil, fmt.Errorf("config: requester %q lineBytes %d exceeds the limit of %d",
				d.Name, line, MaxLineBytes)
		}
		if d.RetryTimeout < 0 || d.RetryMax < 0 {
			return nil, fmt.Errorf("config: requester %q has negative retry settings", d.Name)
		}
		rc := traffic.RequesterConfig{
			Outstanding:  d.Outstanding,
			Rate:         d.Rate,
			ReadFraction: d.ReadFraction,
			LineBytes:    line,
			MaxRequests:  d.MaxRequests,
			Stream:       traffic.NewSeqStream(uint64(i)<<28+uint64(i*line), uint64(line), 1<<24),
			TargetOf:     traffic.InterleavedTargetsBy(nodes, line),
			Retry:        chi.RetryConfig{TimeoutCycles: d.RetryTimeout, MaxRetries: d.RetryMax},
		}
		sys.Requesters[d.Name] = traffic.NewRequester(net, d.Name, rc, rng.Derive(uint64(i)), p.st)
	}

	for _, b := range s.Bridges {
		if b.Name == "" {
			return nil, fmt.Errorf("config: bridge needs a name")
		}
		if seen[b.Name] {
			return nil, fmt.Errorf("config: duplicate name %q", b.Name)
		}
		seen[b.Name] = true
		if len(b.Stations) < 2 {
			return nil, fmt.Errorf("config: bridge %q needs at least 2 stations", b.Name)
		}
		if len(b.Stations) > MaxBridgeLegs {
			return nil, fmt.Errorf("config: bridge %q has %d stations, limit is %d",
				b.Name, len(b.Stations), MaxBridgeLegs)
		}
		legRings := map[string]bool{}
		sts := make([]*noc.CrossStation, 0, len(b.Stations))
		for _, ref := range b.Stations {
			if legRings[ref.Ring] {
				return nil, fmt.Errorf("config: bridge %q has two stations on ring %q", b.Name, ref.Ring)
			}
			legRings[ref.Ring] = true
			st, err := station(ref, "bridge "+b.Name)
			if err != nil {
				return nil, fmt.Errorf("config: bridge %q: %w", b.Name, err)
			}
			sts = append(sts, st)
		}
		switch b.Type {
		case "rbrg-l1":
			noc.NewRBRGL1(net, b.Name, noc.DefaultRBRGL1Config(), sts...)
		case "rbrg-l2":
			if len(sts) != 2 {
				return nil, fmt.Errorf("config: rbrg-l2 %q needs exactly 2 stations", b.Name)
			}
			noc.NewRBRGL2(net, b.Name, noc.DefaultRBRGL2Config(), sts[0], sts[1])
		default:
			return nil, fmt.Errorf("config: bridge %q has unknown type %q", b.Name, b.Type)
		}
	}

	if err := net.Finalize(); err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	net.SetPartitions(s.Partitions)
	net.SetLookahead(s.Lookahead)
	if !s.Faults.Empty() {
		inj, err := fault.NewInjector(net, s.Faults, s.Seed)
		if err != nil {
			return nil, fmt.Errorf("config: %w", err)
		}
		sys.Injector = inj
	}
	return sys, nil
}

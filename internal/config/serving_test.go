package config

import (
	"strings"
	"testing"
)

func TestParseServingSpecDefaults(t *testing.T) {
	s, err := ParseServingSpec([]byte(`{}`))
	if err != nil {
		t.Fatalf("empty spec: %v", err)
	}
	s.ApplyDefaults(true)
	if err := s.Validate(); err != nil {
		t.Fatalf("defaulted spec invalid: %v", err)
	}
	if s.Dies != 4 || len(s.Layers) != 6 || s.Batch != 4 {
		t.Errorf("unexpected defaults: dies=%d layers=%d batch=%d", s.Dies, len(s.Layers), s.Batch)
	}
	if s.LowWatermark != 2 || s.HighWatermark != 8 {
		t.Errorf("default watermarks %d/%d, want 2/8 (multi-buffered streaming)", s.LowWatermark, s.HighWatermark)
	}
	if len(s.Loads) != 4 || s.Loads[0] != 1 || s.Cycles != 8000 {
		t.Errorf("unexpected quick sweep defaults: loads=%v cycles=%d", s.Loads, s.Cycles)
	}
	for i, l := range s.Layers {
		if l.Kind == LayerMoE && len(l.ExpertDies) != l.Experts {
			t.Errorf("layer %d: %d expert dies for %d experts", i, len(l.ExpertDies), l.Experts)
		}
	}
	// Idempotence: defaulting twice changes nothing.
	doc1, _ := CanonicalServingDoc(s)
	s.ApplyDefaults(true)
	doc2, _ := CanonicalServingDoc(s)
	if doc1 != doc2 {
		t.Errorf("ApplyDefaults is not idempotent:\n%s\n%s", doc1, doc2)
	}
}

func TestParseServingSpecRejects(t *testing.T) {
	cases := []struct {
		name, doc, want string
	}{
		{"unknown field", `{"bogus": 1}`, "unknown field"},
		{"trailing data", `{} {}`, "trailing data"},
		{"cyclic deps", `{"layers": [
			{"kind": "attention", "deps": [1]},
			{"kind": "ffn", "deps": [0]}]}`, "cycle"},
		{"self dep", `{"layers": [{"kind": "attention", "deps": [0]}]}`, "itself"},
		{"absent dep", `{"layers": [{"kind": "attention", "deps": [7]}]}`, "absent layer"},
		{"zero-rate load", `{"loads": [0]}`, "offered load"},
		{"negative load", `{"loads": [-3]}`, "offered load"},
		{"expert on absent die", `{"dies": 2,
			"layers": [{"kind": "moe", "experts": 2, "expertDies": [0, 5]}]}`, "absent die"},
		{"expert map wrong length", `{"layers": [{"kind": "moe", "experts": 3, "expertDies": [0]}]}`, "maps 1 of 3"},
		{"moe without experts", `{"layers": [{"kind": "moe"}]}`, "experts outside"},
		{"moe fields on ffn", `{"layers": [{"kind": "ffn", "experts": 2}]}`, "sets MoE fields"},
		{"unknown layer kind", `{"layers": [{"kind": "conv"}]}`, "unknown kind"},
		{"unknown arrival", `{"arrival": {"process": "pareto"}}`, "arrival process"},
		{"inverted watermarks", `{"lowWatermark": 3, "highWatermark": 2}`, "below high watermark"},
		{"oversized fanout", `{"layers": [{"kind": "moe", "experts": 2, "fanOut": 5}]}`, "fan-out"},
		{"too many dies", `{"dies": 99}`, "dies outside"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseServingSpec([]byte(c.doc))
			if err == nil {
				t.Fatalf("accepted %s", c.doc)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestServingLayerDeps(t *testing.T) {
	s, err := ParseServingSpec([]byte(`{"layers": [
		{"kind": "attention"},
		{"kind": "ffn"},
		{"kind": "ffn", "deps": [0]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if deps := s.LayerDeps(0); len(deps) != 0 {
		t.Errorf("layer 0 deps = %v, want none", deps)
	}
	if deps := s.LayerDeps(1); len(deps) != 1 || deps[0] != 0 {
		t.Errorf("layer 1 deps = %v, want [0] (implicit chain)", deps)
	}
	if deps := s.LayerDeps(2); len(deps) != 1 || deps[0] != 0 {
		t.Errorf("layer 2 deps = %v, want explicit [0]", deps)
	}
}

// FuzzParseServingSpec hardens the serving-spec parser against hostile
// documents: whatever the bytes, parsing must not panic, and any
// accepted spec must still be valid after defaulting (the contract the
// daemon's admission path relies on) and must re-parse from its own
// canonical rendering.
func FuzzParseServingSpec(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"dies": 2, "layers": [{"kind": "attention"}]}`))
	f.Add([]byte(`{"layers": [{"kind": "moe", "experts": 4, "fanOut": 2, "expertDies": [0,1,2,3]}]}`))
	f.Add([]byte(`{"layers": [{"kind": "attention", "deps": [1]}, {"kind": "ffn", "deps": [0]}]}`))
	f.Add([]byte(`{"loads": [0]}`))
	f.Add([]byte(`{"arrival": {"process": "bursty", "burstOn": 10, "burstOff": 100}}`))
	f.Add([]byte(`{"dies": 1, "layers": [{"kind": "moe", "experts": 2, "expertDies": [0, 9]}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseServingSpec(data)
		if err != nil {
			return
		}
		s.ApplyDefaults(true)
		if err := s.Validate(); err != nil {
			t.Fatalf("accepted spec invalid after defaults: %v", err)
		}
		doc, err := CanonicalServingDoc(s)
		if err != nil {
			t.Fatalf("canonical render failed: %v", err)
		}
		if _, err := ParseServingSpec([]byte(doc)); err != nil {
			t.Fatalf("canonical doc does not re-parse: %v\n%s", err, doc)
		}
	})
}

package config

import (
	"bytes"
	"encoding/binary"
	"hash/fnv"
	"testing"

	"chipletnoc/internal/noc"
)

// The config-level partition differential suite extends the soc suite to
// the declarative reference fabrics — a bridged multi-ring chain, a
// mesh-of-rings and a hub-and-spoke — proving the conservative-time
// engine is bit-identical to the sequential engine on arbitrary
// user-described topologies, not just the two paper systems, and that
// the partitions knob in a spec document is behaviour-neutral.

// multiringSpec chains four full rings with RBRG-L2 bridges: the
// simplest topology whose partitions only communicate through
// serialized boundary devices.
const multiringSpec = `{
  "name": "diff-multiring",
  "rings": [
    {"name": "r0", "positions": 12, "full": true},
    {"name": "r1", "positions": 12, "full": true},
    {"name": "r2", "positions": 12, "full": true},
    {"name": "r3", "positions": 12, "full": true}
  ],
  "devices": [
    {"name": "c0", "type": "requester", "ring": "r0", "position": 0,
     "outstanding": 8, "rate": 0.8, "readFraction": 0.7, "lineBytes": 64, "targets": ["m3"]},
    {"name": "c1", "type": "requester", "ring": "r1", "position": 2,
     "outstanding": 8, "rate": 0.8, "readFraction": 0.5, "lineBytes": 64, "targets": ["m0", "m3"]},
    {"name": "c2", "type": "requester", "ring": "r2", "position": 4,
     "outstanding": 8, "rate": 0.8, "readFraction": 0.6, "lineBytes": 64, "targets": ["m0"]},
    {"name": "m0", "type": "memory", "ring": "r0", "position": 6,
     "accessCycles": 20, "bytesPerCycle": 64, "queueDepth": 16},
    {"name": "m3", "type": "memory", "ring": "r3", "position": 6,
     "accessCycles": 20, "bytesPerCycle": 64, "queueDepth": 16}
  ],
  "bridges": [
    {"name": "b01", "type": "rbrg-l2",
     "stations": [{"ring": "r0", "position": 11}, {"ring": "r1", "position": 0}]},
    {"name": "b12", "type": "rbrg-l2",
     "stations": [{"ring": "r1", "position": 11}, {"ring": "r2", "position": 0}]},
    {"name": "b23", "type": "rbrg-l2",
     "stations": [{"ring": "r2", "position": 11}, {"ring": "r3", "position": 0}]}
  ]
}`

// meshSpec crosses two vertical and two horizontal rings with RBRG-L1
// intersections — the AI die's fabric in miniature, where every ring
// touches every other partition.
const meshSpec = `{
  "name": "diff-mesh",
  "rings": [
    {"name": "v0", "positions": 10, "full": true},
    {"name": "v1", "positions": 10, "full": true},
    {"name": "h0", "positions": 10, "full": true},
    {"name": "h1", "positions": 10, "full": true}
  ],
  "devices": [
    {"name": "c00", "type": "requester", "ring": "v0", "position": 0,
     "outstanding": 6, "rate": 0.9, "readFraction": 0.5, "lineBytes": 128, "targets": ["l20", "l21"]},
    {"name": "c10", "type": "requester", "ring": "v1", "position": 0,
     "outstanding": 6, "rate": 0.9, "readFraction": 0.5, "lineBytes": 128, "targets": ["l21", "l20"]},
    {"name": "l20", "type": "memory", "ring": "h0", "position": 5,
     "accessCycles": 8, "bytesPerCycle": 128, "queueDepth": 32},
    {"name": "l21", "type": "memory", "ring": "h1", "position": 5,
     "accessCycles": 8, "bytesPerCycle": 128, "queueDepth": 32}
  ],
  "bridges": [
    {"name": "x00", "type": "rbrg-l1",
     "stations": [{"ring": "v0", "position": 3}, {"ring": "h0", "position": 0}]},
    {"name": "x01", "type": "rbrg-l1",
     "stations": [{"ring": "v0", "position": 7}, {"ring": "h1", "position": 0}]},
    {"name": "x10", "type": "rbrg-l1",
     "stations": [{"ring": "v1", "position": 3}, {"ring": "h0", "position": 9}]},
    {"name": "x11", "type": "rbrg-l1",
     "stations": [{"ring": "v1", "position": 7}, {"ring": "h1", "position": 9}]}
  ]
}`

// hubSpec attaches three spoke rings to one central hub ring — the
// IO-die pattern, with a deliberately unbalanced partition weight (the
// hub is bigger than any spoke).
const hubSpec = `{
  "name": "diff-hub",
  "rings": [
    {"name": "hub", "positions": 16, "full": true},
    {"name": "s0", "positions": 6, "full": true},
    {"name": "s1", "positions": 6, "full": true},
    {"name": "s2", "positions": 6, "full": true}
  ],
  "devices": [
    {"name": "c0", "type": "requester", "ring": "s0", "position": 2,
     "outstanding": 4, "rate": 0.7, "readFraction": 0.8, "lineBytes": 64, "targets": ["dram"]},
    {"name": "c1", "type": "requester", "ring": "s1", "position": 2,
     "outstanding": 4, "rate": 0.7, "readFraction": 0.4, "lineBytes": 64, "targets": ["dram"]},
    {"name": "c2", "type": "requester", "ring": "s2", "position": 2,
     "outstanding": 4, "rate": 0.7, "readFraction": 0.6, "lineBytes": 64, "targets": ["dram"]},
    {"name": "dram", "type": "memory", "ring": "hub", "position": 8,
     "accessCycles": 40, "bytesPerCycle": 32, "queueDepth": 24}
  ],
  "bridges": [
    {"name": "h0", "type": "rbrg-l2",
     "stations": [{"ring": "hub", "position": 0}, {"ring": "s0", "position": 0}]},
    {"name": "h1", "type": "rbrg-l2",
     "stations": [{"ring": "hub", "position": 5}, {"ring": "s1", "position": 0}]},
    {"name": "h2", "type": "rbrg-l2",
     "stations": [{"ring": "hub", "position": 11}, {"ring": "s2", "position": 0}]}
  ]
}`

// meshFaultSpec is meshSpec plus a fault schedule killing and repairing
// one intersection mid-run with a watchdog armed: the partitioned engine
// must fall back for the failure window and still match bit for bit.
const meshFaultSpec = `{
  "name": "diff-mesh",
  "rings": [
    {"name": "v0", "positions": 10, "full": true},
    {"name": "v1", "positions": 10, "full": true},
    {"name": "h0", "positions": 10, "full": true},
    {"name": "h1", "positions": 10, "full": true}
  ],
  "devices": [
    {"name": "c00", "type": "requester", "ring": "v0", "position": 0,
     "outstanding": 6, "rate": 0.9, "readFraction": 0.5, "lineBytes": 128,
     "retryTimeout": 400, "retryMax": 8, "targets": ["l20", "l21"]},
    {"name": "c10", "type": "requester", "ring": "v1", "position": 0,
     "outstanding": 6, "rate": 0.9, "readFraction": 0.5, "lineBytes": 128,
     "retryTimeout": 400, "retryMax": 8, "targets": ["l21", "l20"]},
    {"name": "l20", "type": "memory", "ring": "h0", "position": 5,
     "accessCycles": 8, "bytesPerCycle": 128, "queueDepth": 32},
    {"name": "l21", "type": "memory", "ring": "h1", "position": 5,
     "accessCycles": 8, "bytesPerCycle": 128, "queueDepth": 32}
  ],
  "bridges": [
    {"name": "x00", "type": "rbrg-l1",
     "stations": [{"ring": "v0", "position": 3}, {"ring": "h0", "position": 0}]},
    {"name": "x01", "type": "rbrg-l1",
     "stations": [{"ring": "v0", "position": 7}, {"ring": "h1", "position": 0}]},
    {"name": "x10", "type": "rbrg-l1",
     "stations": [{"ring": "v1", "position": 3}, {"ring": "h0", "position": 9}]},
    {"name": "x11", "type": "rbrg-l1",
     "stations": [{"ring": "v1", "position": 7}, {"ring": "h1", "position": 9}]}
  ],
  "faults": {
    "watchdogCycles": 600,
    "events": [
      {"at": 400, "kind": "kill-bridge", "bridge": "x00", "repairAt": 1200},
      {"at": 700, "kind": "drop-flit"},
      {"at": 900, "kind": "corrupt-flit"}
    ]
  }
}`

// configDigest is the comparable outcome of one run: the exported
// counters plus an FNV-1a hash over per-flit latencies in delivery
// order.
type configDigest struct {
	Injected, Delivered, Dropped uint64
	Deflections, Hops            uint64
	Latencies, LatencyFNV        uint64
}

// runSpec builds specJSON at the given partition count, runs it, and
// returns the digest plus the final checkpoint bytes (nil when the spec
// carries a fault schedule — injectors do not checkpoint).
func runSpec(t *testing.T, specJSON string, parts, cycles int) (configDigest, []byte) {
	t.Helper()
	spec, err := Parse([]byte(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	spec.Partitions = parts
	sys, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	var d configDigest
	sys.Net.RecordLatency(func(f *noc.Flit, cycles uint64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], cycles)
		h.Write(b[:])
		d.Latencies++
	})
	sys.Run(cycles)
	d.Injected = sys.Net.InjectedFlits
	d.Delivered = sys.Net.DeliveredFlits
	d.Dropped = sys.Net.DroppedFlits
	d.Deflections = sys.Net.Deflections
	d.Hops = sys.Net.TotalHops
	d.LatencyFNV = h.Sum64()
	if err := sys.Net.CheckConservation(); err != nil {
		t.Fatalf("partitions=%d: %v", parts, err)
	}
	if sys.Injector != nil {
		return d, nil
	}
	var ckpt bytes.Buffer
	if err := sys.WriteCheckpoint(&ckpt, nil); err != nil {
		t.Fatalf("partitions=%d: checkpoint: %v", parts, err)
	}
	return d, ckpt.Bytes()
}

// TestPartitionEquivalenceConfigTopologies sweeps every declarative
// reference fabric across partition counts, requiring the digest and
// checkpoint bytes to match the sequential run exactly. Counts beyond
// the ring count (8 on 4-ring fabrics) exercise the clamp.
func TestPartitionEquivalenceConfigTopologies(t *testing.T) {
	cases := []struct {
		name, spec string
		cycles     int
	}{
		{"multiring", multiringSpec, 4000},
		{"mesh", meshSpec, 4000},
		{"hub", hubSpec, 4000},
		{"mesh-faults", meshFaultSpec, 3000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seqDigest, seqCkpt := runSpec(t, tc.spec, 1, tc.cycles)
			if seqDigest.Delivered == 0 {
				t.Fatalf("sequential reference delivered nothing: %+v", seqDigest)
			}
			for _, parts := range []int{2, 4, 8} {
				digest, ckpt := runSpec(t, tc.spec, parts, tc.cycles)
				if digest != seqDigest {
					t.Errorf("partitions=%d: digest diverged\n got: %+v\nwant: %+v", parts, digest, seqDigest)
				}
				if !bytes.Equal(ckpt, seqCkpt) {
					t.Errorf("partitions=%d: checkpoint bytes diverged (%d vs %d bytes)", parts, len(ckpt), len(seqCkpt))
				}
			}
		})
	}
}

// TestPartitionSpecKnobRejectsNegative pins the validation path: -1 is
// the auto sentinel and must build; anything below it must not. A bad
// lookahead must not build either.
func TestPartitionSpecKnobRejectsNegative(t *testing.T) {
	spec, err := Parse([]byte(multiringSpec))
	if err != nil {
		t.Fatal(err)
	}
	spec.Partitions = -1
	if _, err := spec.Build(); err != nil {
		t.Fatalf("partitions=-1 (auto) must build: %v", err)
	}
	spec.Partitions = -2
	if _, err := spec.Build(); err == nil {
		t.Fatal("partitions below -1 must not build")
	}
	spec.Partitions = 0
	spec.Lookahead = -1
	if _, err := spec.Build(); err == nil {
		t.Fatal("negative lookahead must not build")
	}
}

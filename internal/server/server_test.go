package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"chipletnoc/internal/experiments"
)

// testServer spins up a Server and its HTTP front end; cleanup shuts
// both down (idempotently, so tests may Shutdown explicitly first).
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// doJSON performs one request and decodes the JSON reply into out.
func doJSON(t *testing.T, method, url string, body []byte, out interface{}) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, url, data, err)
		}
	}
	return resp
}

// waitFor polls a job until its status satisfies ok or the deadline
// expires.
func waitFor(t *testing.T, base, id string, ok func(JobStatus) bool) jobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var v jobView
		resp := doJSON(t, "GET", base+"/jobs/"+id, nil, &v)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status poll: HTTP %d", resp.StatusCode)
		}
		if ok(v.Status) {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q", id, v.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func fetchText(t *testing.T, url string, wantCode int) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s: HTTP %d (want %d): %s", url, resp.StatusCode, wantCode, data)
	}
	return string(data)
}

// TestServerSimJobMatchesCLI is the in-process version of the CI e2e
// gate: a sim job served over HTTP must render byte-identically to a
// direct RunSim call — the CLI's code path.
func TestServerSimJobMatchesCLI(t *testing.T) {
	s, ts := testServer(t, Config{})
	defer s.Shutdown()

	var v jobView
	resp := doJSON(t, "POST", ts.URL+"/jobs", []byte(`{"kind":"sim","sim":{"topology":"ai-processor","scale":"quick"}}`), &v)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs: HTTP %d", resp.StatusCode)
	}
	waitFor(t, ts.URL, v.ID, func(st JobStatus) bool { return st == StatusDone })

	want, err := experiments.RunSim(experiments.SimSpec{Topology: "ai-processor", Scale: "quick"}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := fetchText(t, ts.URL+"/jobs/"+v.ID+"/result?format=csv", 200); got != want.CSV() {
		t.Fatalf("service CSV differs from CLI:\nservice: %scli:     %s", got, want.CSV())
	}
	if got := fetchText(t, ts.URL+"/jobs/"+v.ID+"/result?format=text", 200); got != want.Render() {
		t.Fatalf("service text differs from CLI")
	}
	var res experiments.SimResult
	doJSON(t, "GET", ts.URL+"/jobs/"+v.ID+"/result", nil, &res)
	if res.LatencyFNV != "0x16a68fe7dc337024" {
		t.Fatalf("service latency digest %s drifted from golden", res.LatencyFNV)
	}
}

// TestServerExperimentJobMatchesCatalog: an experiment job's artifacts
// must equal a direct catalog run's.
func TestServerExperimentJobMatchesCatalog(t *testing.T) {
	s, ts := testServer(t, Config{})
	defer s.Shutdown()

	var v jobView
	doJSON(t, "POST", ts.URL+"/jobs", []byte(`{"experiment":"fig11","scale":"quick"}`), &v)
	waitFor(t, ts.URL, v.ID, func(st JobStatus) bool { return st == StatusDone })

	want, err := experiments.RunExperiment("fig11", experiments.Quick)
	if err != nil {
		t.Fatal(err)
	}
	if got := fetchText(t, ts.URL+"/jobs/"+v.ID+"/result?format=csv", 200); got != want.CSVs["fig11.csv"] {
		t.Fatalf("experiment CSV differs from catalog run")
	}
	if got := fetchText(t, ts.URL+"/jobs/"+v.ID+"/result?format=text", 200); got != want.Text {
		t.Fatalf("experiment text differs from catalog run")
	}
}

// TestServerBackpressure: with one worker busy and a depth-1 queue, a
// third submission gets 429 with a Retry-After hint, and the rejected
// job never appears in the listing.
func TestServerBackpressure(t *testing.T) {
	s, ts := testServer(t, Config{QueueDepth: 1, Workers: 1, RetryAfterSeconds: 3})
	defer s.Shutdown()

	long := []byte(`{"sim":{"cycles":100000000,"checkpoint_every":512}}`)
	var first jobView
	doJSON(t, "POST", ts.URL+"/jobs", long, &first)
	waitFor(t, ts.URL, first.ID, func(st JobStatus) bool { return st == StatusRunning })

	var second jobView
	if resp := doJSON(t, "POST", ts.URL+"/jobs", long, &second); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second job: HTTP %d", resp.StatusCode)
	}
	resp := doJSON(t, "POST", ts.URL+"/jobs", long, nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third job: HTTP %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want 3", ra)
	}

	var list []jobView
	doJSON(t, "GET", ts.URL+"/jobs", nil, &list)
	if len(list) != 2 {
		t.Fatalf("%d jobs listed after a rejection, want 2", len(list))
	}

	// Unblock shutdown: cancel both jobs.
	doJSON(t, "DELETE", ts.URL+"/jobs/"+first.ID, nil, nil)
	doJSON(t, "DELETE", ts.URL+"/jobs/"+second.ID, nil, nil)
	waitFor(t, ts.URL, first.ID, func(st JobStatus) bool { return st == StatusCanceled })
}

// TestServerCancelRunning: DELETE on a running job cancels it at the
// next checkpoint interval — far sooner than its hundred-million-cycle
// budget.
func TestServerCancelRunning(t *testing.T) {
	s, ts := testServer(t, Config{})
	defer s.Shutdown()

	var v jobView
	doJSON(t, "POST", ts.URL+"/jobs", []byte(`{"sim":{"cycles":100000000,"checkpoint_every":512}}`), &v)
	waitFor(t, ts.URL, v.ID, func(st JobStatus) bool { return st == StatusRunning })

	resp := doJSON(t, "DELETE", ts.URL+"/jobs/"+v.ID, nil, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: HTTP %d", resp.StatusCode)
	}
	waitFor(t, ts.URL, v.ID, func(st JobStatus) bool { return st == StatusCanceled })
	fetchText(t, ts.URL+"/jobs/"+v.ID+"/result", http.StatusConflict)
}

// TestServerCancelQueued: DELETE on a queued job cancels it before it
// ever runs.
func TestServerCancelQueued(t *testing.T) {
	s, ts := testServer(t, Config{QueueDepth: 4, Workers: 1})
	defer s.Shutdown()

	long := []byte(`{"sim":{"cycles":100000000,"checkpoint_every":512}}`)
	var running, queued jobView
	doJSON(t, "POST", ts.URL+"/jobs", long, &running)
	waitFor(t, ts.URL, running.ID, func(st JobStatus) bool { return st == StatusRunning })
	doJSON(t, "POST", ts.URL+"/jobs", long, &queued)

	var afterDelete jobView
	doJSON(t, "DELETE", ts.URL+"/jobs/"+queued.ID, nil, &afterDelete)
	if afterDelete.Status != StatusCanceled {
		t.Fatalf("queued job after DELETE: %q, want canceled", afterDelete.Status)
	}
	doJSON(t, "DELETE", ts.URL+"/jobs/"+running.ID, nil, nil)
	waitFor(t, ts.URL, running.ID, func(st JobStatus) bool { return st == StatusCanceled })
}

// TestServerGracefulShutdownResume is the service-level resume proof: a
// daemon shut down mid-job checkpoints it; a new daemon on the same
// state directory resumes and finishes it, and the result is
// byte-identical to a never-interrupted run. A second job still queued
// at shutdown survives the restart too.
func TestServerGracefulShutdownResume(t *testing.T) {
	stateDir := t.TempDir()
	specBody := `{"sim":{"topology":"ai-processor","scale":"quick","cycles":60000,"checkpoint_every":256}}`

	a, ts := testServer(t, Config{StateDir: stateDir, Workers: 1})
	var running, queued jobView
	doJSON(t, "POST", ts.URL+"/jobs", []byte(specBody), &running)
	waitFor(t, ts.URL, running.ID, func(st JobStatus) bool { return st == StatusRunning })
	doJSON(t, "POST", ts.URL+"/jobs", []byte(`{"sim":{"cycles":500}}`), &queued)

	a.Shutdown()
	av, _ := a.Get(running.ID)
	if av.Status != StatusSuspended || av.Cycle == 0 || av.Cycle >= 60000 {
		t.Fatalf("after shutdown: status %q at cycle %d", av.Status, av.Cycle)
	}
	qv, _ := a.Get(queued.ID)
	if qv.Status != StatusSuspended {
		t.Fatalf("queued job after shutdown: %q, want suspended", qv.Status)
	}
	ts.Close()

	b, ts2 := testServer(t, Config{StateDir: stateDir, Workers: 1})
	defer b.Shutdown()
	waitFor(t, ts2.URL, running.ID, func(st JobStatus) bool { return st == StatusDone })
	waitFor(t, ts2.URL, queued.ID, func(st JobStatus) bool { return st == StatusDone })

	want, err := experiments.RunSim(experiments.SimSpec{
		Topology: "ai-processor", Scale: "quick", Cycles: 60000, CheckpointEvery: 256,
	}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := fetchText(t, ts2.URL+"/jobs/"+running.ID+"/result?format=csv", 200); got != want.CSV() {
		t.Fatalf("resumed job differs from uninterrupted run:\nresumed: %sdirect:  %s", got, want.CSV())
	}
}

// TestServerRejectsBadSubmissions covers the HTTP-level validation.
func TestServerRejectsBadSubmissions(t *testing.T) {
	s, ts := testServer(t, Config{})
	defer s.Shutdown()

	for _, body := range []string{`not json`, `{"jobs":1}`, `{"experiment":"fig99"}`} {
		if resp := doJSON(t, "POST", ts.URL+"/jobs", []byte(body), nil); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST %q: HTTP %d, want 400", body, resp.StatusCode)
		}
	}
	if resp := doJSON(t, "GET", ts.URL+"/jobs/job-999", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: HTTP %d, want 404", resp.StatusCode)
	}
	if got := fetchText(t, ts.URL+"/healthz", 200); got == "" {
		t.Fatal("empty healthz body")
	}
}

// TestServerQueueSurvivesManyJobs pushes several quick jobs through a
// two-worker pool and checks they all complete with the same digest —
// worker parallelism must not perturb determinism.
func TestServerQueueSurvivesManyJobs(t *testing.T) {
	s, ts := testServer(t, Config{QueueDepth: 8, Workers: 2})
	defer s.Shutdown()

	body := []byte(`{"sim":{"cycles":1500}}`)
	ids := make([]string, 0, 4)
	for i := 0; i < 4; i++ {
		var v jobView
		if resp := doJSON(t, "POST", ts.URL+"/jobs", body, &v); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("job %d: HTTP %d", i, resp.StatusCode)
		}
		ids = append(ids, v.ID)
	}
	var first string
	for i, id := range ids {
		waitFor(t, ts.URL, id, func(st JobStatus) bool { return st == StatusDone })
		csv := fetchText(t, ts.URL+"/jobs/"+id+"/result?format=csv", 200)
		if i == 0 {
			first = csv
		} else if csv != first {
			t.Fatalf("job %s produced different bytes than its identical twin:\n%s\nvs\n%s", id, csv, first)
		}
	}
}

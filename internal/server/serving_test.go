// Serving-job coverage: the daemon must serve an open-loop sweep
// byte-identically to the CLI's direct run path, memoize it under a
// content address that ignores the behaviour-neutral partitions and
// lookahead knobs, and echo each submission's own canonical document.
package server

import (
	"strings"
	"testing"

	"chipletnoc/internal/experiments"
)

// servingBody is a small two-point sweep that runs in well under a
// second — big enough to exercise MoE traffic, small enough for CI.
const servingBody = `{"kind":"serving","serving":{"seed":9,"loads":[4,64],"cycles":4000}}`

// TestServerServingJobMatchesCLI: a serving job served over HTTP must
// render byte-identically to RunServingDoc — the CLI's code path.
func TestServerServingJobMatchesCLI(t *testing.T) {
	s, ts := testServer(t, Config{})
	defer s.Shutdown()

	v, _ := submitJob(t, ts.URL, []byte(servingBody))
	waitFor(t, ts.URL, v.ID, func(st JobStatus) bool { return st == StatusDone })

	want, err := experiments.RunServingDoc(`{"seed":9,"loads":[4,64],"cycles":4000}`, experiments.Quick)
	if err != nil {
		t.Fatal(err)
	}
	if got := fetchText(t, ts.URL+"/jobs/"+v.ID+"/result?format=csv", 200); got != want.CSV() {
		t.Fatalf("service CSV differs from CLI:\nservice:\n%s\ncli:\n%s", got, want.CSV())
	}
	if got := fetchText(t, ts.URL+"/jobs/"+v.ID+"/result?format=text", 200); got != want.Render() {
		t.Fatalf("service text differs from CLI")
	}
	var res experiments.ServingResult
	doJSON(t, "GET", ts.URL+"/jobs/"+v.ID+"/result", nil, &res)
	if len(res.Points) != 2 || res.Doc == "" {
		t.Fatalf("JSON result malformed: %d points, doc %q", len(res.Points), res.Doc)
	}
	for i, p := range res.Points {
		if p.Digest != want.Points[i].Digest {
			t.Errorf("point %d digest %s differs from CLI %s", i, p.Digest, want.Points[i].Digest)
		}
	}
}

// TestServingJobsAreCached: a resubmitted serving sweep answers from
// the store without running, with byte-identical bodies — and a
// submission differing only in partitions/lookahead still hits.
func TestServingJobsAreCached(t *testing.T) {
	ran := 0
	testRunHook = func() { ran++ }
	defer func() { testRunHook = nil }()

	s, ts := testServer(t, Config{Cache: testStore(t)})
	defer s.Shutdown()

	cold, disp := submitJob(t, ts.URL, []byte(servingBody))
	if disp != "miss" {
		t.Fatalf("cold submission disposition %q, want miss", disp)
	}
	waitFor(t, ts.URL, cold.ID, func(st JobStatus) bool { return st == StatusDone })
	coldBodies := fetchBodies(t, ts.URL, cold.ID)

	warm, disp := submitJob(t, ts.URL, []byte(servingBody))
	if disp != "hit" {
		t.Fatalf("warm submission disposition %q, want hit", disp)
	}
	if !warm.Cached || warm.Status != StatusDone {
		t.Fatalf("warm job not born done+cached: %+v", warm)
	}
	if warmBodies := fetchBodies(t, ts.URL, warm.ID); warmBodies != coldBodies {
		t.Fatal("cached serving bodies differ from the cold run")
	}

	// Partitions and lookahead are behaviour-neutral (the serving
	// determinism suite proves it), so they must not split the cache.
	knobs := `{"kind":"serving","serving":{"seed":9,"loads":[4,64],"cycles":4000,"partitions":2,"lookahead":8}}`
	tuned, disp := submitJob(t, ts.URL, []byte(knobs))
	if disp != "hit" {
		t.Fatalf("partitions/lookahead submission disposition %q, want hit", disp)
	}
	// The echoed doc must be the tuned submission's own, not the cold
	// run's: identity-excluded knobs reflect what was submitted.
	var res experiments.ServingResult
	doJSON(t, "GET", ts.URL+"/jobs/"+tuned.ID+"/result", nil, &res)
	if !strings.Contains(res.Doc, `"partitions":2`) {
		t.Errorf("cached result does not echo the submission's partitions knob: %s", res.Doc)
	}
	// And the rows themselves are the cached ones, byte-for-byte.
	if got := fetchText(t, ts.URL+"/jobs/"+tuned.ID+"/result?format=csv", 200); got != coldBodies.csv {
		t.Fatal("knob-tuned cached CSV differs from the cold run")
	}

	if ran != 1 {
		t.Fatalf("%d sweeps ran, want exactly 1 (everything else cached)", ran)
	}

	// A different seed is a different identity: it must run, not hit.
	reseeded := `{"kind":"serving","serving":{"seed":10,"loads":[4,64],"cycles":4000}}`
	if _, disp := submitJob(t, ts.URL, []byte(reseeded)); disp != "miss" {
		t.Fatalf("reseeded submission disposition %q, want miss", disp)
	}
}

// TestJobKeyServing pins the serving identity rules at the key level.
func TestJobKeyServing(t *testing.T) {
	key := func(doc string) string {
		t.Helper()
		k, err := JobKey(JobSpec{Kind: "serving", Serving: []byte(doc)})
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	base := key(`{"seed":9,"loads":[4,64]}`)
	if key(`{"loads":[4,64],"seed":9}`) != base {
		t.Error("JSON field order split the serving cache key")
	}
	if key(`{"seed":9,"loads":[4,64],"partitions":4,"lookahead":16}`) != base {
		t.Error("behaviour-neutral partitions/lookahead split the serving cache key")
	}
	if key(`{"seed":10,"loads":[4,64]}`) == base {
		t.Error("different seed produced the same serving cache key")
	}
	if key(`{"seed":9,"loads":[4,64],"arrival":{"process":"bursty"}}`) == base {
		t.Error("different arrival process produced the same serving cache key")
	}
	// Scale is excluded: once the doc is canonical it fully determines
	// the sweep, so quick/full spellings of the same doc share a key.
	full, err := JobKey(JobSpec{Kind: "serving", Scale: "full", Serving: []byte(`{"seed":9,"loads":[4,64],"cycles":4000}`)})
	if err != nil {
		t.Fatal(err)
	}
	if quick := key(`{"seed":9,"loads":[4,64],"cycles":4000}`); full != quick {
		t.Error("scale split the cache for fully-specified serving docs")
	}
}

// TestParseJobSpecServing covers the serving kind's admission rules.
func TestParseJobSpecServing(t *testing.T) {
	spec, err := ParseJobSpec([]byte(`{"serving":{}}`))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Kind != "serving" || spec.Scale != "quick" {
		t.Errorf("kind=%q scale=%q; want serving/quick inferred", spec.Kind, spec.Scale)
	}
	if !strings.Contains(string(spec.Serving), `"loads"`) {
		t.Errorf("serving doc not canonicalized: %s", spec.Serving)
	}
	// Normalization is idempotent: renormalizing the canonical spec is a
	// fixed point (what keeps recovered jobs' identities stable).
	again, err := spec.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if string(again.Serving) != string(spec.Serving) {
		t.Error("serving normalization is not idempotent")
	}
	for _, bad := range []string{
		`{"kind":"serving","sim":{}}`,
		`{"kind":"serving","experiment":"fig11"}`,
		`{"kind":"sim","serving":{}}`,
		`{"kind":"experiment","experiment":"fig11","serving":{}}`,
		`{"kind":"serving","serving":{"loads":[0]}}`,
		`{"kind":"serving","serving":{"bogus":1}}`,
	} {
		if _, err := ParseJobSpec([]byte(bad)); err == nil {
			t.Errorf("accepted invalid submission %s", bad)
		}
	}
}

package server

import (
	"strings"
	"testing"
)

// TestParseJobSpec covers the accept/reject matrix; its name is also the
// CI fuzz step's -run filter.
func TestParseJobSpec(t *testing.T) {
	good := []struct {
		name, body string
		check      func(t *testing.T, js JobSpec)
	}{
		{"empty object defaults to quick AI sim", `{}`, func(t *testing.T, js JobSpec) {
			if js.Kind != "sim" || js.Sim == nil || js.Sim.Topology != "ai-processor" ||
				js.Sim.Scale != "quick" || js.Sim.Cycles != 3000 {
				t.Fatalf("normalized: %+v / %+v", js, js.Sim)
			}
		}},
		{"explicit sim", `{"kind":"sim","sim":{"topology":"server-cpu","scale":"full","seed":7}}`,
			func(t *testing.T, js JobSpec) {
				if js.Sim.Topology != "server-cpu" || js.Sim.Cycles != 20000 || js.Sim.Seed != 7 {
					t.Fatalf("normalized: %+v", js.Sim)
				}
			}},
		{"experiment with inferred kind", `{"experiment":"fig11"}`, func(t *testing.T, js JobSpec) {
			if js.Kind != "experiment" || js.Experiment != "fig11" || js.Scale != "quick" {
				t.Fatalf("normalized: %+v", js)
			}
		}},
		{"experiment alias resolves", `{"kind":"experiment","experiment":"fig14","scale":"full"}`,
			func(t *testing.T, js JobSpec) {
				if js.Experiment != "table7+fig14+table8" || js.Scale != "full" {
					t.Fatalf("normalized: %+v", js)
				}
			}},
	}
	for _, tc := range good {
		js, err := ParseJobSpec([]byte(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		tc.check(t, js)
	}

	bad := []struct{ name, body string }{
		{"not json", `not json`},
		{"unknown field", `{"jobs":"sim"}`},
		{"unknown nested field", `{"sim":{"topologyy":"x"}}`},
		{"trailing garbage", `{} trailing`},
		{"second document", `{}{}`},
		{"unknown kind", `{"kind":"benchmark"}`},
		{"unknown topology", `{"sim":{"topology":"mesh"}}`},
		{"unknown experiment", `{"experiment":"fig99"}`},
		{"unknown scale", `{"experiment":"fig11","scale":"huge"}`},
		{"sim job with experiment", `{"kind":"sim","experiment":"fig11"}`},
		{"experiment job with sim", `{"kind":"experiment","experiment":"fig11","sim":{}}`},
		{"custom without config", `{"sim":{"topology":"custom"}}`},
		{"config on builtin", `{"sim":{"config":"{}"}}`},
		{"custom with bad config", `{"sim":{"topology":"custom","config":"not json"}}`},
	}
	for _, tc := range bad {
		if _, err := ParseJobSpec([]byte(tc.body)); err == nil {
			t.Fatalf("%s: accepted %q", tc.name, tc.body)
		}
	}

	huge := `{"sim":{"topology":"custom","config":"` + strings.Repeat("x", maxJobSpecBytes) + `"}}`
	if _, err := ParseJobSpec([]byte(huge)); err == nil {
		t.Fatal("accepted an oversized spec")
	}
}

// FuzzParseJobSpec: hostile bytes must error, never panic. Wired into
// the CI fuzz-smoke step.
func FuzzParseJobSpec(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"kind":"sim","sim":{"topology":"ai-processor","cycles":100}}`))
	f.Add([]byte(`{"experiment":"fig11","scale":"quick"}`))
	f.Add([]byte(`{"sim":{"topology":"custom","config":"{\"name\":\"x\"}"}}`))
	f.Add([]byte(`{"kind":`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		js, err := ParseJobSpec(data)
		if err == nil && js.Kind != "sim" && js.Kind != "experiment" {
			t.Fatalf("accepted spec with kind %q", js.Kind)
		}
	})
}

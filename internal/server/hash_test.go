package server

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"chipletnoc/internal/experiments"
)

// mustKey hashes a spec or fails the test.
func mustKey(t *testing.T, spec JobSpec) string {
	t.Helper()
	key, err := JobKey(spec)
	if err != nil {
		t.Fatalf("JobKey(%+v): %v", spec, err)
	}
	return key
}

func simJob(mut func(*experiments.SimSpec)) JobSpec {
	s := &experiments.SimSpec{Topology: "ai-processor"}
	if mut != nil {
		mut(s)
	}
	return JobSpec{Kind: "sim", Sim: s}
}

// TestJobKeyIdentityFields is the identity contract, field by field:
// everything that changes a result changes the key, and the two
// behaviour-neutral knobs (partition count, checkpoint cadence) do not.
func TestJobKeyIdentityFields(t *testing.T) {
	base := mustKey(t, simJob(nil))

	sameKey := map[string]JobSpec{
		"defaults spelled out": simJob(func(s *experiments.SimSpec) {
			s.Scale = "quick"
			s.Cycles = 3000
		}),
		"kind defaulted":     {Sim: &experiments.SimSpec{Topology: "ai-processor"}},
		"topology defaulted": {},
		"checkpoint cadence": simJob(func(s *experiments.SimSpec) { s.CheckpointEvery = 512 }),
		"partition count":    simJob(func(s *experiments.SimSpec) { s.Partitions = 4 }),
		"both excluded knobs": simJob(func(s *experiments.SimSpec) {
			s.CheckpointEvery = 64
			s.Partitions = 2
		}),
	}
	for name, spec := range sameKey {
		if got := mustKey(t, spec); got != base {
			t.Errorf("%s: key %s != base %s (identity-excluded field split the cache)", name, got, base)
		}
	}

	differKey := map[string]JobSpec{
		"topology":        simJob(func(s *experiments.SimSpec) { s.Topology = "server-cpu" }),
		"scale":           simJob(func(s *experiments.SimSpec) { s.Scale = "full" }),
		"cycles":          simJob(func(s *experiments.SimSpec) { s.Cycles = 3001 }),
		"seed":            simJob(func(s *experiments.SimSpec) { s.Seed = 7 }),
		"metrics":         simJob(func(s *experiments.SimSpec) { s.MetricsInterval = 100 }),
		"experiment kind": {Kind: "experiment", Experiment: "table5"},
	}
	seen := map[string]string{base: "base"}
	for name, spec := range differKey {
		got := mustKey(t, spec)
		if prev, dup := seen[got]; dup {
			t.Errorf("%s: key collides with %s (%s)", name, prev, got)
		}
		seen[got] = name
	}
}

// TestJobKeyCustomConfig pins the config-document rules: key order and
// whitespace are invisible, the embedded partitions hint is invisible,
// and the embedded seed is identity.
func TestJobKeyCustomConfig(t *testing.T) {
	custom := func(doc string) JobSpec {
		return JobSpec{Kind: "sim", Sim: &experiments.SimSpec{Topology: "custom", Config: doc}}
	}
	const doc = `{
	  "name": "two-node",
	  "rings": [{"name": "r", "positions": 4}],
	  "devices": [
	    {"name": "c", "type": "requester", "ring": "r", "position": 0,
	     "outstanding": 4, "rate": 1.0, "readFraction": 0.5, "targets": ["m"]},
	    {"name": "m", "type": "memory", "ring": "r", "position": 2,
	     "accessCycles": 20, "bytesPerCycle": 64, "queueDepth": 8}
	  ]
	}`
	base := mustKey(t, custom(doc))

	// Re-render the document with a different key order and spacing.
	var v map[string]interface{}
	dec := json.NewDecoder(strings.NewReader(doc))
	dec.UseNumber()
	if err := dec.Decode(&v); err != nil {
		t.Fatal(err)
	}
	reordered, _ := json.MarshalIndent(v, "  ", "    ")
	if got := mustKey(t, custom(string(reordered))); got != base {
		t.Errorf("reordered config changed the key: %s != %s", got, base)
	}

	// The partitions hint inside the document is identity-excluded.
	v["partitions"] = json.Number("4")
	withParts, _ := json.Marshal(v)
	if got := mustKey(t, custom(string(withParts))); got != base {
		t.Errorf("config partitions hint changed the key: %s != %s", got, base)
	}

	// The seed inside the document is identity.
	delete(v, "partitions")
	v["seed"] = json.Number("12345")
	withSeed, _ := json.Marshal(v)
	if got := mustKey(t, custom(string(withSeed))); got == base {
		t.Error("config seed did not change the key")
	}
}

func TestJobKeyExperiment(t *testing.T) {
	quick := mustKey(t, JobSpec{Kind: "experiment", Experiment: "table7+fig14+table8"})
	// Scale defaults to quick; kind is inferred; aliases resolve to the
	// same canonical name, so all three share one cache entry.
	if got := mustKey(t, JobSpec{Experiment: "table7+fig14+table8", Scale: "quick"}); got != quick {
		t.Errorf("defaulted experiment scale split the cache: %s != %s", got, quick)
	}
	if got := mustKey(t, JobSpec{Experiment: "fig14"}); got != quick {
		t.Errorf("experiment alias split the cache: %s != %s", got, quick)
	}
	if got := mustKey(t, JobSpec{Kind: "experiment", Experiment: "table7+fig14+table8", Scale: "full"}); got == quick {
		t.Error("experiment scale is not part of the identity")
	}
	if got := mustKey(t, JobSpec{Kind: "experiment", Experiment: "table5"}); got == quick {
		t.Error("experiment name is not part of the identity")
	}
}

func TestCachedResultCodec(t *testing.T) {
	spec, err := (experiments.SimSpec{}).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	res := &experiments.SimResult{Spec: spec, LatencyFNV: "deadbeef", Delivered: 42}
	payload, err := (&CachedResult{Kind: "sim", Sim: res}).Encode()
	if err != nil {
		t.Fatal(err)
	}

	// Round trip, with the spec echo patched to the submission's own.
	patched := spec
	patched.CheckpointEvery = 999
	patched.Partitions = 4
	got, err := CachedSimResult(payload, patched)
	if err != nil {
		t.Fatal(err)
	}
	if got.Spec != patched {
		t.Fatalf("spec echo not patched: %+v", got.Spec)
	}
	if got.LatencyFNV != res.LatencyFNV || got.Delivered != res.Delivered {
		t.Fatalf("payload mangled in round trip: %+v", got)
	}

	// Shape violations are errors at both ends, never silent.
	if _, err := (&CachedResult{Kind: "sim"}).Encode(); err == nil {
		t.Error("encoded a sim payload with no result")
	}
	if _, err := (&CachedResult{Kind: "experiment", Sim: res}).Encode(); err == nil {
		t.Error("encoded an experiment payload carrying a sim result")
	}
	for _, bad := range []string{"", "{", `{"kind":"sim"}`, `{"kind":"mystery"}`, `[1,2]`} {
		if _, err := DecodeCachedResult([]byte(bad)); err == nil {
			t.Errorf("decoded malformed payload %q", bad)
		}
	}
	if _, err := CachedSimResult(payload, spec); err != nil {
		t.Errorf("valid payload rejected: %v", err)
	}
	expPayload, err := (&CachedResult{Kind: "experiment", Artifact: &experiments.Artifact{Name: "x"}}).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := CachedSimResult(expPayload, spec); err == nil {
		t.Error("experiment payload served as a sim result")
	}
}

// FuzzNormalizeSpec hammers the three invariants that make content
// addressing sound for arbitrary submissions: normalization is
// idempotent, the key survives a marshal/parse round trip, and the key
// is invariant under JSON re-rendering (key order, whitespace).
func FuzzNormalizeSpec(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"kind":"sim"}`))
	f.Add([]byte(`{"sim":{"topology":"server-cpu","cycles":123,"seed":9}}`))
	f.Add([]byte(`{"sim":{"seed":18446744073709551615}}`))
	f.Add([]byte(`{"sim":{"checkpoint_every":64,"metrics_interval":10}}`))
	f.Add([]byte(`{"experiment":"table5","scale":"full"}`))
	f.Add([]byte(`{"sim":{"topology":"custom","config":"{\"name\":\"n\",\"rings\":[{\"name\":\"r\",\"positions\":4}],\"devices\":[{\"name\":\"c\",\"type\":\"requester\",\"ring\":\"r\",\"position\":0,\"outstanding\":1,\"rate\":0.5,\"readFraction\":0.5,\"targets\":[\"m\"]},{\"name\":\"m\",\"type\":\"memory\",\"ring\":\"r\",\"position\":1,\"accessCycles\":10,\"bytesPerCycle\":32,\"queueDepth\":4}],\"partitions\":2}"}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		js, err := ParseJobSpec(data)
		if err != nil {
			return // invalid submissions just need to not panic
		}
		// Idempotence: normalizing a normalized spec is the identity.
		again, err := js.Normalize()
		if err != nil {
			t.Fatalf("re-normalize failed: %v", err)
		}
		if !reflect.DeepEqual(js, again) {
			t.Fatalf("normalize not idempotent:\n first %+v\nsecond %+v", js, again)
		}
		key, err := JobKey(js)
		if err != nil {
			return // valid spec kinds without a content address
		}
		// Marshal/parse round trip preserves the key.
		rt, err := json.Marshal(js)
		if err != nil {
			t.Fatal(err)
		}
		js2, err := ParseJobSpec(rt)
		if err != nil {
			t.Fatalf("normalized spec does not re-parse: %v\n%s", err, rt)
		}
		if key2 := mustKey(t, js2); key2 != key {
			t.Fatalf("round trip changed key: %s -> %s", key, key2)
		}
		// Re-rendering the raw submission (sorted keys, new whitespace)
		// must hash identically: the hash sees canonical content only.
		dec := json.NewDecoder(strings.NewReader(string(data)))
		dec.UseNumber()
		var generic interface{}
		if err := dec.Decode(&generic); err != nil {
			return
		}
		rendered, err := json.MarshalIndent(generic, "", "   ")
		if err != nil {
			return
		}
		js3, err := ParseJobSpec(rendered)
		if err != nil {
			return // duplicate JSON keys etc. can change strictness
		}
		if key3 := mustKey(t, js3); key3 != key {
			t.Fatalf("re-rendered submission changed key: %s -> %s\noriginal %s\nrendered %s", key, key3, data, rendered)
		}
	})
}

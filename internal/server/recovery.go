// Startup recovery: a restarted daemon scans its state directory and
// boots DEGRADED rather than refusing to start. Every persisted job is
// classified exactly one way:
//
//   - resumed: record and checkpoint both verify — the job continues
//     from its checkpointed cycle, bit-identical to an uninterrupted run.
//   - requeued: the record verifies but the checkpoint is missing or
//     damaged — the damaged file is quarantined and the job reruns from
//     cycle 0, which reaches the same final bytes (the simulator is
//     deterministic).
//   - quarantined: the record itself is damaged — both files move to
//     quarantine/ with a .reason note, and the daemon carries on.
//
// Torn *.tmp files (a crash mid-stage) are deleted: the atomic-write
// protocol guarantees the target they were staging for is intact.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"chipletnoc/internal/durable"
	"chipletnoc/internal/sim"
)

// RecoveryReport summarizes a boot-time state scan; /readyz serves it.
type RecoveryReport struct {
	Resumed     int      `json:"resumed"`
	Requeued    int      `json:"requeued"`
	Quarantined int      `json:"quarantined"`
	Notes       []string `json:"notes,omitempty"`
}

// maxRecoveryNotes bounds the note log so a pathological state
// directory cannot balloon the report.
const maxRecoveryNotes = 64

// note appends to the recovery log. Callers hold s.mu, or run before
// the worker pool starts.
func (s *Server) note(format string, args ...interface{}) {
	if len(s.recovery.Notes) < maxRecoveryNotes {
		s.recovery.Notes = append(s.recovery.Notes, fmt.Sprintf(format, args...))
	}
}

// quarantineDirName is the subdirectory damaged state files move into.
const quarantineDirName = "quarantine"

// recoverState scans the state directory, rebuilding every job it can
// and quarantining what it cannot. It only fails when the directory
// itself is unreadable — per-file damage never prevents startup.
func (s *Server) recoverState() ([]*Job, error) {
	entries, err := os.ReadDir(s.cfg.StateDir)
	if err != nil {
		return nil, err
	}
	// seen marks every job ID that had a record — good or bad — so the
	// debris pass below does not re-handle (or re-count) its checkpoint.
	seen := map[string]bool{}
	var jobs []*Job
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, jobRecordSuffix) {
			continue
		}
		id := strings.TrimSuffix(name, jobRecordSuffix)
		seen[id] = true
		job, err := s.recoverJob(id)
		if err != nil {
			s.quarantine(name, err)
			s.quarantine(id+checkpointSuffix, fmt.Errorf("its job record was quarantined: %v", err))
			s.recovery.Quarantined++
			continue
		}
		if n, err := strconv.Atoi(strings.TrimPrefix(id, "job-")); err == nil && n >= s.nextID {
			s.nextID = n + 1
		}
		jobs = append(jobs, job)
	}
	// Debris pass: torn temp files from an interrupted stage, legacy
	// pre-v3 records, and checkpoints whose record is gone.
	for _, e := range entries {
		name := e.Name()
		switch {
		case e.IsDir() || strings.HasSuffix(name, jobRecordSuffix):
		case strings.HasSuffix(name, durable.TmpSuffix):
			os.Remove(filepath.Join(s.cfg.StateDir, name))
			s.note("removed torn temp file %s", name)
		case strings.HasSuffix(name, ".json"):
			s.quarantine(name, errors.New("legacy job record without a checksum envelope"))
			s.recovery.Quarantined++
		case strings.HasSuffix(name, checkpointSuffix) && !seen[strings.TrimSuffix(name, checkpointSuffix)]:
			s.quarantine(name, errors.New("orphaned checkpoint without a job record"))
			s.recovery.Quarantined++
		}
	}
	sort.Slice(jobs, func(i, j int) bool { return jobIDLess(jobs[i].ID, jobs[j].ID) })
	return jobs, nil
}

// recoverJob loads one persisted job. A damaged record is an error (the
// caller quarantines it); a damaged or missing checkpoint is not — the
// job is requeued from cycle 0 and determinism makes that equivalent.
func (s *Server) recoverJob(id string) (*Job, error) {
	payload, err := durable.ReadSealed(filepath.Join(s.cfg.StateDir, id+jobRecordSuffix))
	if err != nil {
		return nil, err
	}
	var p persistedJob
	if err := json.Unmarshal(payload, &p); err != nil {
		return nil, fmt.Errorf("job record: %w", err)
	}
	if p.ID != id {
		return nil, fmt.Errorf("job record names %q but the file names %q", p.ID, id)
	}
	job := &Job{ID: p.ID, Spec: p.Spec, Status: StatusQueued, Cycle: p.Cycle}
	ckptName := id + checkpointSuffix
	ckpt, err := durable.ReadFile(filepath.Join(s.cfg.StateDir, ckptName))
	switch {
	case err == nil:
		// Frame verification (trailer + whole-file CRC32-C) proves the
		// checkpoint complete and untampered without building a topology.
		if _, verr := sim.VerifySnapshotFrame(ckpt); verr != nil {
			s.quarantine(ckptName, verr)
			s.recovery.Requeued++
			job.Cycle = 0
			s.note("job %s: checkpoint failed verification, requeued from cycle 0", id)
		} else {
			job.resume = ckpt
			s.recovery.Resumed++
		}
	case errors.Is(err, os.ErrNotExist):
		// Submitted (or suspended while queued) but never checkpointed.
		job.Cycle = 0
		s.recovery.Requeued++
	default:
		job.Cycle = 0
		s.recovery.Requeued++
		s.note("job %s: checkpoint unreadable (%v), requeued from cycle 0", id, err)
	}
	return job, nil
}

// quarantine moves a damaged state file into quarantine/ beside a
// .reason note. It never fails the boot: when even the move is
// impossible the file is deleted so the next scan stays clean.
func (s *Server) quarantine(name string, cause error) {
	src := filepath.Join(s.cfg.StateDir, name)
	if _, err := os.Lstat(src); err != nil {
		return
	}
	qdir := filepath.Join(s.cfg.StateDir, quarantineDirName)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		os.Remove(src)
		s.note("quarantine dir unavailable (%v); deleted %s", err, name)
		return
	}
	dst := filepath.Join(qdir, name)
	if err := os.Rename(src, dst); err != nil {
		os.Remove(src)
		s.note("could not move %s to quarantine (%v); deleted it", name, err)
		return
	}
	os.WriteFile(dst+".reason", []byte(cause.Error()+"\n"), 0o644)
	s.note("quarantined %s: %v", name, cause)
}

// Package server exposes the experiment suite as a job service: a
// bounded FIFO queue with backpressure feeds a worker pool running the
// exact RunSim/RunExperiment code paths the CLI uses, with cooperative
// cancellation, checkpoint-based suspend on shutdown, and resume on
// restart. Because both ends dispatch through the same normalized specs,
// a job's results are byte-identical to the CLI's.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"chipletnoc/internal/experiments"
)

// maxJobSpecBytes bounds a job submission (1 MiB) — enough for a large
// inline custom-topology config, small enough that hostile submissions
// cannot balloon memory.
const maxJobSpecBytes = 1 << 20

// JobSpec is the body of a POST /jobs submission.
type JobSpec struct {
	// Kind is "sim" (default): one parameterized simulation described by
	// Sim — "experiment": one named artifact from the paper catalog — or
	// "serving": one open-loop serving sweep described by Serving.
	Kind string `json:"kind,omitempty"`
	// Sim parameterizes a "sim" job; nil means all defaults (the quick
	// golden AI-Processor run).
	Sim *experiments.SimSpec `json:"sim,omitempty"`
	// Experiment names the catalog entry for an "experiment" job.
	Experiment string `json:"experiment,omitempty"`
	// Scale is "quick" or "full" for an "experiment" or "serving" job
	// (default quick).
	Scale string `json:"scale,omitempty"`
	// Serving is the serving-spec document for a "serving" job; empty
	// means all defaults at the job's scale. Normalize canonicalizes it
	// (defaults applied, fixed field order), so the stored spec fully
	// describes the sweep.
	Serving json.RawMessage `json:"serving,omitempty"`
}

// ParseJobSpec parses and validates an untrusted job submission. Unknown
// fields, trailing garbage, oversized bodies and invalid specs are all
// errors; hostile bytes must never panic. The returned spec is fully
// normalized: running it needs no further defaulting, so the daemon and
// the CLI agree on what a spec means.
func ParseJobSpec(data []byte) (JobSpec, error) {
	var js JobSpec
	if len(data) > maxJobSpecBytes {
		return js, fmt.Errorf("job spec of %d bytes exceeds the %d-byte limit", len(data), maxJobSpecBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&js); err != nil {
		return js, fmt.Errorf("job spec: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return js, fmt.Errorf("job spec: trailing data after JSON document")
	}
	return js.Normalize()
}

// Normalize defaults the kind, validates the per-kind fields and
// canonicalizes the embedded spec (including the custom-topology config
// document, whose JSON is re-rendered with sorted keys). It is
// idempotent, and EVERY admission path — HTTP parse and programmatic
// Submit alike — normalizes before anything persists or hashes, so a
// job's on-disk record, its log lines and its content hash always
// describe the same canonical spec.
func (js JobSpec) Normalize() (JobSpec, error) {
	if js.Kind == "" {
		switch {
		case js.Experiment != "":
			js.Kind = "experiment"
		case len(js.Serving) > 0:
			js.Kind = "serving"
		default:
			js.Kind = "sim"
		}
	}
	switch js.Kind {
	case "sim":
		if js.Experiment != "" || js.Scale != "" {
			return js, fmt.Errorf("sim job must not set experiment or scale (scale lives in sim.scale)")
		}
		if len(js.Serving) > 0 {
			return js, fmt.Errorf("sim job must not set a serving spec")
		}
		if js.Sim == nil {
			js.Sim = &experiments.SimSpec{}
		}
		normalized, err := js.Sim.Normalize()
		if err != nil {
			return js, fmt.Errorf("sim spec: %w", err)
		}
		js.Sim = &normalized
	case "experiment":
		if js.Sim != nil || len(js.Serving) > 0 {
			return js, fmt.Errorf("experiment job must not set a sim or serving spec")
		}
		name, err := experiments.CanonicalExperiment(js.Experiment)
		if err != nil {
			return js, err
		}
		js.Experiment = name
		scale, err := experiments.ParseScale(js.Scale)
		if err != nil {
			return js, err
		}
		js.Scale = experiments.ScaleName(scale)
	case "serving":
		if js.Sim != nil || js.Experiment != "" {
			return js, fmt.Errorf("serving job must not set a sim spec or experiment name")
		}
		scale, err := experiments.ParseScale(js.Scale)
		if err != nil {
			return js, err
		}
		js.Scale = experiments.ScaleName(scale)
		canonical, _, err := experiments.NormalizeServingDoc(string(js.Serving), scale)
		if err != nil {
			return js, err
		}
		js.Serving = json.RawMessage(canonical)
	default:
		return js, fmt.Errorf("unknown job kind %q (want sim, experiment or serving)", js.Kind)
	}
	return js, nil
}

package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"chipletnoc/internal/durable"
	"chipletnoc/internal/experiments"
	"chipletnoc/internal/sim"
)

// JobStatus is a job's lifecycle state.
type JobStatus string

// Job lifecycle states. queued → running → done|failed|canceled, with
// suspended reachable from queued or running when the daemon shuts down
// (a suspended sim job carries a checkpoint and resumes on restart).
const (
	StatusQueued    JobStatus = "queued"
	StatusRunning   JobStatus = "running"
	StatusDone      JobStatus = "done"
	StatusFailed    JobStatus = "failed"
	StatusCanceled  JobStatus = "canceled"
	StatusSuspended JobStatus = "suspended"
)

// Job is one queued or executed submission. All mutable fields are
// guarded by the server mutex except cancel, which the worker polls from
// inside a run.
type Job struct {
	ID     string
	Spec   JobSpec
	Status JobStatus
	Error  string
	// Cycle is the simulated cycle reached when the job was suspended.
	Cycle     uint64
	SimResult *experiments.SimResult
	Artifact  *experiments.Artifact
	// resume is the checkpoint to continue from (reloaded or suspended).
	resume []byte
	cancel atomic.Bool
}

// Config tunes a Server. Zero values pick the documented defaults.
type Config struct {
	// QueueDepth bounds the jobs waiting to run (default 16); a full
	// queue answers 429 with a Retry-After header.
	QueueDepth int
	// Workers is the worker-pool size (default 2).
	Workers int
	// StateDir, when set, persists job records and rolling checkpoints
	// so a restarted daemon — graceful or crashed — resumes or requeues
	// them. Empty disables persistence.
	StateDir string
	// RetryAfterSeconds is the Retry-After hint on 429 (default 1).
	RetryAfterSeconds int
	// JobDeadline caps one job's wall clock (0 = unlimited). A sim job
	// over the deadline stops at its next interrupt poll; an experiment
	// job (coarse-grained, uninterruptible) is failed after the fact.
	JobDeadline time.Duration
}

// Server is the job service. Create with New, expose with Handler, stop
// with Shutdown.
type Server struct {
	cfg      Config
	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string
	nextID   int
	queue    chan *Job
	draining atomic.Bool
	wg       sync.WaitGroup
	recovery RecoveryReport
}

// jobRecordSuffix and checkpointSuffix name a job's two state files:
// <id>.job is the sealed (checksummed) JSON record, <id>.ckpt the
// self-verifying NOCSNAP checkpoint.
const (
	jobRecordSuffix  = ".job"
	checkpointSuffix = ".ckpt"
)

// persistedJob is the on-disk record of a submitted, running or
// suspended job; its checkpoint lives next to it in <id>.ckpt.
type persistedJob struct {
	ID    string  `json:"id"`
	Spec  JobSpec `json:"spec"`
	Cycle uint64  `json:"cycle"`
}

// New builds a server, recovers persisted jobs from cfg.StateDir (they
// re-enter the queue ahead of new submissions; damaged state is
// quarantined, never fatal), and starts the worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.RetryAfterSeconds <= 0 {
		cfg.RetryAfterSeconds = 1
	}
	s := &Server{cfg: cfg, jobs: map[string]*Job{}}

	var reloaded []*Job
	if cfg.StateDir != "" {
		if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
			return nil, err
		}
		var err error
		if reloaded, err = s.recoverState(); err != nil {
			return nil, err
		}
	}
	// The queue must hold every reloaded job plus the configured depth of
	// new ones, so a restart never rejects its own suspended work.
	s.queue = make(chan *Job, cfg.QueueDepth+len(reloaded))
	for _, job := range reloaded {
		s.jobs[job.ID] = job
		s.order = append(s.order, job.ID)
		s.queue <- job
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// jobIDLess orders "job-N" IDs numerically.
func jobIDLess(a, b string) bool {
	an, aerr := strconv.Atoi(strings.TrimPrefix(a, "job-"))
	bn, berr := strconv.Atoi(strings.TrimPrefix(b, "job-"))
	if aerr == nil && berr == nil {
		return an < bn
	}
	return a < b
}

// persistJob writes a job's record (and checkpoint, when it carries
// one) through the durable layer: sealed envelopes, atomic replacement,
// fsync of file and directory. The checkpoint goes first so a crash
// between the two writes leaves an older-but-consistent pair — the
// record never references bytes that are not fully on disk. Callers
// hold s.mu, which also serializes these writes against dropPersisted.
func (s *Server) persistJob(job *Job) error {
	if s.cfg.StateDir == "" {
		return nil
	}
	rec, err := json.Marshal(persistedJob{ID: job.ID, Spec: job.Spec, Cycle: job.Cycle})
	if err != nil {
		return err
	}
	if job.resume != nil {
		if err := durable.WriteFile(filepath.Join(s.cfg.StateDir, job.ID+checkpointSuffix), job.resume, 0o644); err != nil {
			return err
		}
	}
	return durable.WriteSealed(filepath.Join(s.cfg.StateDir, job.ID+jobRecordSuffix), rec, 0o644)
}

// dropPersisted removes a job's on-disk record after it reaches a
// terminal state.
func (s *Server) dropPersisted(id string) {
	if s.cfg.StateDir == "" {
		return
	}
	os.Remove(filepath.Join(s.cfg.StateDir, id+jobRecordSuffix))
	os.Remove(filepath.Join(s.cfg.StateDir, id+checkpointSuffix))
}

// worker drains the queue until Shutdown closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.runJob(job)
	}
}

// testPanicHook, when set by a test, runs at the top of a job's
// execution — the deterministic way to stage a worker panic.
var testPanicHook func(*Job)

// runJob executes one dequeued job end to end. A panic anywhere in the
// job's execution is isolated here: the job is marked failed with the
// stack attached and the worker survives to take the next job — one
// misbehaving workload must never take down the whole daemon.
func (s *Server) runJob(job *Job) {
	defer func() {
		if r := recover(); r != nil {
			s.mu.Lock()
			if job.Status == StatusRunning {
				job.Status = StatusFailed
				job.Error = fmt.Sprintf("worker panic: %v\n\n%s", r, debug.Stack())
				s.dropPersisted(job.ID)
			}
			s.mu.Unlock()
		}
	}()

	s.mu.Lock()
	if job.Status != StatusQueued {
		// Canceled while waiting in the queue.
		s.mu.Unlock()
		return
	}
	if s.draining.Load() {
		// Shutdown drained this job before it ever ran: suspend it as-is
		// (with whatever checkpoint it already carried) for the next
		// daemon instance.
		job.Status = StatusSuspended
		s.persistJob(job)
		s.mu.Unlock()
		return
	}
	job.Status = StatusRunning
	s.mu.Unlock()

	if testPanicHook != nil {
		testPanicHook(job)
	}
	started := time.Now()
	switch job.Spec.Kind {
	case "experiment":
		s.runExperimentJob(job, started)
	default:
		s.runSimJob(job, started)
	}
}

// pastDeadline reports whether a job that started at started has used
// up the configured wall-clock budget.
func (s *Server) pastDeadline(started time.Time) bool {
	return s.cfg.JobDeadline > 0 && time.Since(started) > s.cfg.JobDeadline
}

// deadlineError renders the uniform deadline failure message.
func (s *Server) deadlineError(started time.Time) string {
	return fmt.Sprintf("job exceeded its %v wall-clock deadline (ran %v)",
		s.cfg.JobDeadline, time.Since(started).Round(time.Millisecond))
}

// runExperimentJob runs a catalog artifact. Experiments are coarse-grained
// (internally parallel, no checkpoint), so cancellation, shutdown and the
// wall-clock deadline take effect at job granularity only.
func (s *Server) runExperimentJob(job *Job, started time.Time) {
	scale, err := experiments.ParseScale(job.Spec.Scale)
	if err != nil {
		s.finish(job, func() { job.Status, job.Error = StatusFailed, err.Error() })
		return
	}
	art, err := experiments.RunExperiment(job.Spec.Experiment, scale)
	s.finish(job, func() {
		if err != nil {
			job.Status, job.Error = StatusFailed, err.Error()
			return
		}
		if job.cancel.Load() {
			job.Status = StatusCanceled
			return
		}
		if s.pastDeadline(started) {
			job.Status, job.Error = StatusFailed, s.deadlineError(started)
			return
		}
		job.Status, job.Artifact = StatusDone, art
	})
}

// runSimJob runs one simulation with cooperative interruption: a DELETE
// cancels at the next checkpoint boundary, a Shutdown suspends with a
// checkpoint that the restarted daemon resumes, and a wall-clock
// deadline fails it. When the spec checkpoints periodically and a state
// directory is configured, every checkpoint is persisted as it is taken,
// so even a SIGKILLed daemon resumes from the last completed interval.
func (s *Server) runSimJob(job *Job, started time.Time) {
	var deadlineHit atomic.Bool
	ctl := &experiments.SimControl{Interrupt: func() experiments.InterruptKind {
		if job.cancel.Load() {
			return experiments.CancelRun
		}
		if s.pastDeadline(started) {
			deadlineHit.Store(true)
			return experiments.CancelRun
		}
		if s.draining.Load() {
			return experiments.SuspendRun
		}
		return experiments.KeepRunning
	}}
	if s.cfg.StateDir != "" && job.Spec.Sim.CheckpointEvery > 0 {
		ctl.OnCheckpoint = func(data []byte, cycle uint64) error {
			s.mu.Lock()
			defer s.mu.Unlock()
			if job.Status != StatusRunning {
				// Raced with a cancel: don't resurrect dropped files.
				return nil
			}
			job.Cycle, job.resume = cycle, data
			if err := s.persistJob(job); err != nil {
				// Persistence is best-effort while the job is healthy; a
				// full disk must not kill a running simulation.
				s.note("job %s: rolling checkpoint at cycle %d not persisted: %v", job.ID, cycle, err)
			}
			return nil
		}
	}
	res, err := experiments.RunSim(*job.Spec.Sim, job.resume, ctl)
	if err != nil && job.resume != nil && errors.Is(err, sim.ErrCorruptSnapshot) {
		// The resume blob was damaged in memory-to-run handoff or the
		// recovery scan's frame check missed deeper rot. Quarantine the
		// idea of resuming and rerun from scratch — determinism makes the
		// fresh run's bytes identical.
		s.mu.Lock()
		job.resume, job.Cycle = nil, 0
		s.note("job %s: resume checkpoint rejected (%v); rerunning from cycle 0", job.ID, err)
		s.mu.Unlock()
		res, err = experiments.RunSim(*job.Spec.Sim, nil, ctl)
	}

	var intr *experiments.Interrupted
	s.finish(job, func() {
		switch {
		case err == nil:
			job.Status, job.SimResult, job.resume = StatusDone, res, nil
		case errors.Is(err, experiments.ErrCanceled):
			if deadlineHit.Load() {
				job.Status, job.Error, job.resume = StatusFailed, s.deadlineError(started), nil
				return
			}
			job.Status, job.resume = StatusCanceled, nil
		case errors.As(err, &intr):
			job.Status, job.Cycle, job.resume = StatusSuspended, intr.Cycle, intr.Checkpoint
			if perr := s.persistJob(job); perr != nil {
				job.Status, job.Error = StatusFailed, fmt.Sprintf("suspend: %v", perr)
			}
		default:
			job.Status, job.Error = StatusFailed, err.Error()
		}
	})
}

// finish applies a terminal state transition under the lock; jobs
// reaching a terminal state shed their on-disk record and checkpoint.
func (s *Server) finish(job *Job, apply func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	apply()
	switch job.Status {
	case StatusDone, StatusFailed, StatusCanceled:
		s.dropPersisted(job.ID)
	}
}

// Shutdown stops accepting jobs, suspends everything queued or running
// (sim jobs checkpoint at their next interrupt poll), and waits for the
// workers to drain. After Shutdown, a New on the same StateDir resumes
// the suspended jobs.
func (s *Server) Shutdown() {
	// Closing the queue under the lock keeps Submit's non-blocking send
	// from racing a send-on-closed-channel panic.
	s.mu.Lock()
	s.draining.Store(true)
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
}

// Submit enqueues a parsed spec. It returns the job and true, or nil and
// false when the queue is full (HTTP layer: 429).
func (s *Server) Submit(spec JobSpec) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining.Load() {
		return nil, false
	}
	job := &Job{ID: fmt.Sprintf("job-%d", s.nextID), Spec: spec, Status: StatusQueued}
	select {
	case s.queue <- job:
	default:
		return nil, false
	}
	s.nextID++
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	// Persist the record at admission so even a SIGKILLed daemon requeues
	// every accepted job on restart. Best-effort: a full disk degrades
	// durability, not service. (The write happens under s.mu, which
	// orders it before any worker's dropPersisted for this job.)
	if err := s.persistJob(job); err != nil {
		s.note("job %s: admission record not persisted: %v", job.ID, err)
	}
	return job, true
}

// Cancel requests a job stop: a queued job is canceled immediately, a
// running one at its next interrupt poll (within one checkpoint
// interval), a suspended one is dropped along with its checkpoint.
// The bool reports whether the job exists.
func (s *Server) Cancel(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return nil, false
	}
	switch job.Status {
	case StatusQueued, StatusSuspended:
		job.Status = StatusCanceled
		job.resume = nil
		s.dropPersisted(id)
	case StatusRunning:
		job.cancel.Store(true)
	}
	return job, true
}

// Recovery returns a copy of the boot-time recovery report.
func (s *Server) Recovery() RecoveryReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := s.recovery
	rec.Notes = append([]string(nil), s.recovery.Notes...)
	return rec
}

// Get returns a job by ID.
func (s *Server) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	return job, ok
}

// jobView is the status JSON for one job.
type jobView struct {
	ID     string    `json:"id"`
	Kind   string    `json:"kind"`
	Status JobStatus `json:"status"`
	Error  string    `json:"error,omitempty"`
	Cycle  uint64    `json:"cycle,omitempty"`
}

// view renders a job's status snapshot under the lock.
func (s *Server) view(job *Job) jobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	return jobView{ID: job.ID, Kind: job.Spec.Kind, Status: job.Status, Error: job.Error, Cycle: job.Cycle}
}

// Handler returns the HTTP API:
//
//	POST   /jobs             submit a JobSpec (202, or 429 + Retry-After)
//	GET    /jobs             list job statuses
//	GET    /jobs/{id}        one job's status
//	GET    /jobs/{id}/result result: ?format=json|csv|text, ?file= for
//	                         experiment CSV artifacts
//	DELETE /jobs/{id}        cancel (cooperative for running sim jobs)
//	GET    /healthz          liveness + queue depth (always 200 while up)
//	GET    /readyz           readiness: queue utilization and the boot
//	                         recovery report; 503 while draining
//
// Every route runs under a recovery middleware: a panicking handler
// answers 500 with a JSON error instead of tearing down the connection
// (and, with it, operator trust).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleDelete)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	return recoverMiddleware(mux)
}

// recoverMiddleware turns a handler panic into a 500 JSON error so one
// bad request cannot crash the daemon. http.ErrAbortHandler is the
// net/http-sanctioned way to abort a response and is re-raised.
func recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler {
					panic(rec)
				}
				httpError(w, http.StatusInternalServerError, "internal error: %v", rec)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// healthView is the /healthz body.
type healthView struct {
	Status     string `json:"status"`
	QueueDepth int    `json:"queue_depth"`
}

// readyView is the /readyz body.
type readyView struct {
	Status        string         `json:"status"`
	QueueDepth    int            `json:"queue_depth"`
	QueueCapacity int            `json:"queue_capacity"`
	Workers       int            `json:"workers"`
	Recovery      RecoveryReport `json:"recovery"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthView{Status: "ok", QueueDepth: len(s.queue)})
}

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	rec := s.recovery
	rec.Notes = append([]string(nil), s.recovery.Notes...)
	s.mu.Unlock()
	v := readyView{
		Status:        "ready",
		QueueDepth:    len(s.queue),
		QueueCapacity: s.cfg.QueueDepth,
		Workers:       s.cfg.Workers,
		Recovery:      rec,
	}
	status := http.StatusOK
	if s.draining.Load() {
		v.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, v)
}

// writeJSON writes one JSON response.
func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// httpError writes a JSON error body.
func httpError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	body, err := readBody(w, r)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			httpError(w, http.StatusRequestEntityTooLarge,
				"job spec exceeds the %d-byte limit", maxJobSpecBytes)
			return
		}
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	spec, err := ParseJobSpec(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	job, ok := s.Submit(spec)
	if !ok {
		w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfterSeconds))
		httpError(w, http.StatusTooManyRequests, "queue is full (%d jobs waiting); retry later", s.cfg.QueueDepth)
		return
	}
	writeJSON(w, http.StatusAccepted, s.view(job))
}

// readBody reads a request body with the job-spec size cap. Passing the
// ResponseWriter lets MaxBytesReader close the connection after an
// over-limit body, so the client stops uploading; a *http.MaxBytesError
// propagates to the caller, which maps it to 413.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	return io.ReadAll(http.MaxBytesReader(w, r.Body, maxJobSpecBytes))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]jobView, 0, len(s.order))
	for _, id := range s.order {
		job := s.jobs[id]
		views = append(views, jobView{ID: job.ID, Kind: job.Spec.Kind, Status: job.Status, Error: job.Error, Cycle: job.Cycle})
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, s.view(job))
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, s.view(job))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	s.mu.Lock()
	status := job.Status
	res, art := job.SimResult, job.Artifact
	s.mu.Unlock()
	if status != StatusDone {
		httpError(w, http.StatusConflict, "job is %s, not done", status)
		return
	}

	format := r.URL.Query().Get("format")
	if format == "" {
		format = "json"
	}
	switch {
	case res != nil:
		switch format {
		case "json":
			writeJSON(w, http.StatusOK, res)
		case "csv":
			w.Header().Set("Content-Type", "text/csv")
			fmt.Fprint(w, res.CSV())
		case "text":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, res.Render())
		default:
			httpError(w, http.StatusBadRequest, "unknown format %q (want json, csv or text)", format)
		}
	case art != nil:
		switch format {
		case "json":
			writeJSON(w, http.StatusOK, art)
		case "text":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, art.Text)
		case "csv":
			file := r.URL.Query().Get("file")
			if file == "" && len(art.CSVs) == 1 {
				for f := range art.CSVs {
					file = f
				}
			}
			data, ok := art.CSVs[file]
			if !ok {
				files := make([]string, 0, len(art.CSVs))
				for f := range art.CSVs {
					files = append(files, f)
				}
				sort.Strings(files)
				httpError(w, http.StatusBadRequest, "pick a CSV with ?file=; this artifact has: %s", strings.Join(files, ", "))
				return
			}
			w.Header().Set("Content-Type", "text/csv")
			fmt.Fprint(w, data)
		default:
			httpError(w, http.StatusBadRequest, "unknown format %q (want json, csv or text)", format)
		}
	default:
		httpError(w, http.StatusInternalServerError, "done job has no result")
	}
}

package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"chipletnoc/internal/experiments"
)

// JobStatus is a job's lifecycle state.
type JobStatus string

// Job lifecycle states. queued → running → done|failed|canceled, with
// suspended reachable from queued or running when the daemon shuts down
// (a suspended sim job carries a checkpoint and resumes on restart).
const (
	StatusQueued    JobStatus = "queued"
	StatusRunning   JobStatus = "running"
	StatusDone      JobStatus = "done"
	StatusFailed    JobStatus = "failed"
	StatusCanceled  JobStatus = "canceled"
	StatusSuspended JobStatus = "suspended"
)

// Job is one queued or executed submission. All mutable fields are
// guarded by the server mutex except cancel, which the worker polls from
// inside a run.
type Job struct {
	ID     string
	Spec   JobSpec
	Status JobStatus
	Error  string
	// Cycle is the simulated cycle reached when the job was suspended.
	Cycle     uint64
	SimResult *experiments.SimResult
	Artifact  *experiments.Artifact
	// resume is the checkpoint to continue from (reloaded or suspended).
	resume []byte
	cancel atomic.Bool
}

// Config tunes a Server. Zero values pick the documented defaults.
type Config struct {
	// QueueDepth bounds the jobs waiting to run (default 16); a full
	// queue answers 429 with a Retry-After header.
	QueueDepth int
	// Workers is the worker-pool size (default 2).
	Workers int
	// StateDir, when set, persists suspended jobs so a restarted daemon
	// resumes them. Empty disables persistence.
	StateDir string
	// RetryAfterSeconds is the Retry-After hint on 429 (default 1).
	RetryAfterSeconds int
}

// Server is the job service. Create with New, expose with Handler, stop
// with Shutdown.
type Server struct {
	cfg      Config
	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string
	nextID   int
	queue    chan *Job
	draining atomic.Bool
	wg       sync.WaitGroup
}

// persistedJob is the on-disk record of a suspended job; the checkpoint
// itself lives next to it in <id>.ckpt.
type persistedJob struct {
	ID    string  `json:"id"`
	Spec  JobSpec `json:"spec"`
	Cycle uint64  `json:"cycle"`
}

// New builds a server, reloads any suspended jobs from cfg.StateDir
// (they re-enter the queue ahead of new submissions), and starts the
// worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.RetryAfterSeconds <= 0 {
		cfg.RetryAfterSeconds = 1
	}
	s := &Server{cfg: cfg, jobs: map[string]*Job{}}

	var reloaded []*Job
	if cfg.StateDir != "" {
		if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
			return nil, err
		}
		var err error
		if reloaded, err = s.loadState(); err != nil {
			return nil, err
		}
	}
	// The queue must hold every reloaded job plus the configured depth of
	// new ones, so a restart never rejects its own suspended work.
	s.queue = make(chan *Job, cfg.QueueDepth+len(reloaded))
	for _, job := range reloaded {
		s.jobs[job.ID] = job
		s.order = append(s.order, job.ID)
		s.queue <- job
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// loadState reads suspended jobs back from the state directory in job-ID
// order and advances nextID past them.
func (s *Server) loadState() ([]*Job, error) {
	entries, err := os.ReadDir(s.cfg.StateDir)
	if err != nil {
		return nil, err
	}
	var jobs []*Job
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.cfg.StateDir, e.Name()))
		if err != nil {
			return nil, err
		}
		var p persistedJob
		if err := json.Unmarshal(data, &p); err != nil {
			return nil, fmt.Errorf("state file %s: %w", e.Name(), err)
		}
		job := &Job{ID: p.ID, Spec: p.Spec, Status: StatusQueued, Cycle: p.Cycle}
		ckpt, err := os.ReadFile(filepath.Join(s.cfg.StateDir, p.ID+".ckpt"))
		if err == nil {
			job.resume = ckpt
		} else if !errors.Is(err, os.ErrNotExist) {
			return nil, err
		}
		if n, err := strconv.Atoi(strings.TrimPrefix(p.ID, "job-")); err == nil && n >= s.nextID {
			s.nextID = n + 1
		}
		jobs = append(jobs, job)
	}
	sort.Slice(jobs, func(i, j int) bool { return jobIDLess(jobs[i].ID, jobs[j].ID) })
	return jobs, nil
}

// jobIDLess orders "job-N" IDs numerically.
func jobIDLess(a, b string) bool {
	an, aerr := strconv.Atoi(strings.TrimPrefix(a, "job-"))
	bn, berr := strconv.Atoi(strings.TrimPrefix(b, "job-"))
	if aerr == nil && berr == nil {
		return an < bn
	}
	return a < b
}

// persistJob writes a suspended job's record and checkpoint atomically.
func (s *Server) persistJob(job *Job) error {
	if s.cfg.StateDir == "" {
		return nil
	}
	rec, err := json.Marshal(persistedJob{ID: job.ID, Spec: job.Spec, Cycle: job.Cycle})
	if err != nil {
		return err
	}
	write := func(name string, data []byte) error {
		path := filepath.Join(s.cfg.StateDir, name)
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, data, 0o644); err != nil {
			return err
		}
		return os.Rename(tmp, path)
	}
	if job.resume != nil {
		if err := write(job.ID+".ckpt", job.resume); err != nil {
			return err
		}
	}
	return write(job.ID+".json", rec)
}

// dropPersisted removes a job's on-disk record after it finishes.
func (s *Server) dropPersisted(id string) {
	if s.cfg.StateDir == "" {
		return
	}
	os.Remove(filepath.Join(s.cfg.StateDir, id+".json"))
	os.Remove(filepath.Join(s.cfg.StateDir, id+".ckpt"))
}

// worker drains the queue until Shutdown closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.runJob(job)
	}
}

// runJob executes one dequeued job end to end.
func (s *Server) runJob(job *Job) {
	s.mu.Lock()
	if job.Status != StatusQueued {
		// Canceled while waiting in the queue.
		s.mu.Unlock()
		return
	}
	if s.draining.Load() {
		// Shutdown drained this job before it ever ran: suspend it as-is
		// (with whatever checkpoint it already carried) for the next
		// daemon instance.
		job.Status = StatusSuspended
		s.persistJob(job)
		s.mu.Unlock()
		return
	}
	job.Status = StatusRunning
	s.mu.Unlock()

	switch job.Spec.Kind {
	case "experiment":
		s.runExperimentJob(job)
	default:
		s.runSimJob(job)
	}
}

// runExperimentJob runs a catalog artifact. Experiments are coarse-grained
// (internally parallel, no checkpoint), so cancellation and shutdown take
// effect at job granularity only.
func (s *Server) runExperimentJob(job *Job) {
	scale, err := experiments.ParseScale(job.Spec.Scale)
	if err != nil {
		s.finish(job, func() { job.Status, job.Error = StatusFailed, err.Error() })
		return
	}
	art, err := experiments.RunExperiment(job.Spec.Experiment, scale)
	s.finish(job, func() {
		if err != nil {
			job.Status, job.Error = StatusFailed, err.Error()
			return
		}
		if job.cancel.Load() {
			job.Status = StatusCanceled
			return
		}
		job.Status, job.Artifact = StatusDone, art
	})
}

// runSimJob runs one simulation with cooperative interruption: a DELETE
// cancels at the next checkpoint boundary, a Shutdown suspends with a
// checkpoint that the restarted daemon resumes.
func (s *Server) runSimJob(job *Job) {
	ctl := &experiments.SimControl{Interrupt: func() experiments.InterruptKind {
		if job.cancel.Load() {
			return experiments.CancelRun
		}
		if s.draining.Load() {
			return experiments.SuspendRun
		}
		return experiments.KeepRunning
	}}
	res, err := experiments.RunSim(*job.Spec.Sim, job.resume, ctl)

	var intr *experiments.Interrupted
	s.finish(job, func() {
		switch {
		case err == nil:
			job.Status, job.SimResult, job.resume = StatusDone, res, nil
			s.dropPersisted(job.ID)
		case errors.Is(err, experiments.ErrCanceled):
			job.Status, job.resume = StatusCanceled, nil
			s.dropPersisted(job.ID)
		case errors.As(err, &intr):
			job.Status, job.Cycle, job.resume = StatusSuspended, intr.Cycle, intr.Checkpoint
			if perr := s.persistJob(job); perr != nil {
				job.Status, job.Error = StatusFailed, fmt.Sprintf("suspend: %v", perr)
			}
		default:
			job.Status, job.Error = StatusFailed, err.Error()
		}
	})
}

// finish applies a terminal state transition under the lock.
func (s *Server) finish(job *Job, apply func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	apply()
}

// Shutdown stops accepting jobs, suspends everything queued or running
// (sim jobs checkpoint at their next interrupt poll), and waits for the
// workers to drain. After Shutdown, a New on the same StateDir resumes
// the suspended jobs.
func (s *Server) Shutdown() {
	// Closing the queue under the lock keeps Submit's non-blocking send
	// from racing a send-on-closed-channel panic.
	s.mu.Lock()
	s.draining.Store(true)
	close(s.queue)
	s.mu.Unlock()
	s.wg.Wait()
}

// Submit enqueues a parsed spec. It returns the job and true, or nil and
// false when the queue is full (HTTP layer: 429).
func (s *Server) Submit(spec JobSpec) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining.Load() {
		return nil, false
	}
	job := &Job{ID: fmt.Sprintf("job-%d", s.nextID), Spec: spec, Status: StatusQueued}
	select {
	case s.queue <- job:
	default:
		return nil, false
	}
	s.nextID++
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	return job, true
}

// Cancel requests a job stop: a queued job is canceled immediately, a
// running one at its next interrupt poll (within one checkpoint
// interval), a suspended one is dropped along with its checkpoint.
// The bool reports whether the job exists.
func (s *Server) Cancel(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return nil, false
	}
	switch job.Status {
	case StatusQueued, StatusSuspended:
		job.Status = StatusCanceled
		job.resume = nil
		s.dropPersisted(id)
	case StatusRunning:
		job.cancel.Store(true)
	}
	return job, true
}

// Get returns a job by ID.
func (s *Server) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	return job, ok
}

// jobView is the status JSON for one job.
type jobView struct {
	ID     string    `json:"id"`
	Kind   string    `json:"kind"`
	Status JobStatus `json:"status"`
	Error  string    `json:"error,omitempty"`
	Cycle  uint64    `json:"cycle,omitempty"`
}

// view renders a job's status snapshot under the lock.
func (s *Server) view(job *Job) jobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	return jobView{ID: job.ID, Kind: job.Spec.Kind, Status: job.Status, Error: job.Error, Cycle: job.Cycle}
}

// Handler returns the HTTP API:
//
//	POST   /jobs             submit a JobSpec (202, or 429 + Retry-After)
//	GET    /jobs             list job statuses
//	GET    /jobs/{id}        one job's status
//	GET    /jobs/{id}/result result: ?format=json|csv|text, ?file= for
//	                         experiment CSV artifacts
//	DELETE /jobs/{id}        cancel (cooperative for running sim jobs)
//	GET    /healthz          liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleDelete)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

// writeJSON writes one JSON response.
func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// httpError writes a JSON error body.
func httpError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	body, err := readBody(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	spec, err := ParseJobSpec(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	job, ok := s.Submit(spec)
	if !ok {
		w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfterSeconds))
		httpError(w, http.StatusTooManyRequests, "queue is full (%d jobs waiting); retry later", s.cfg.QueueDepth)
		return
	}
	writeJSON(w, http.StatusAccepted, s.view(job))
}

// readBody reads a request body with the job-spec size cap.
func readBody(r *http.Request) ([]byte, error) {
	data, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, maxJobSpecBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return nil, fmt.Errorf("job spec exceeds the %d-byte limit", maxJobSpecBytes)
		}
		return nil, err
	}
	return data, nil
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]jobView, 0, len(s.order))
	for _, id := range s.order {
		job := s.jobs[id]
		views = append(views, jobView{ID: job.ID, Kind: job.Spec.Kind, Status: job.Status, Error: job.Error, Cycle: job.Cycle})
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, s.view(job))
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, s.view(job))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	s.mu.Lock()
	status := job.Status
	res, art := job.SimResult, job.Artifact
	s.mu.Unlock()
	if status != StatusDone {
		httpError(w, http.StatusConflict, "job is %s, not done", status)
		return
	}

	format := r.URL.Query().Get("format")
	if format == "" {
		format = "json"
	}
	switch {
	case res != nil:
		switch format {
		case "json":
			writeJSON(w, http.StatusOK, res)
		case "csv":
			w.Header().Set("Content-Type", "text/csv")
			fmt.Fprint(w, res.CSV())
		case "text":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, res.Render())
		default:
			httpError(w, http.StatusBadRequest, "unknown format %q (want json, csv or text)", format)
		}
	case art != nil:
		switch format {
		case "json":
			writeJSON(w, http.StatusOK, art)
		case "text":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, art.Text)
		case "csv":
			file := r.URL.Query().Get("file")
			if file == "" && len(art.CSVs) == 1 {
				for f := range art.CSVs {
					file = f
				}
			}
			data, ok := art.CSVs[file]
			if !ok {
				files := make([]string, 0, len(art.CSVs))
				for f := range art.CSVs {
					files = append(files, f)
				}
				sort.Strings(files)
				httpError(w, http.StatusBadRequest, "pick a CSV with ?file=; this artifact has: %s", strings.Join(files, ", "))
				return
			}
			w.Header().Set("Content-Type", "text/csv")
			fmt.Fprint(w, data)
		default:
			httpError(w, http.StatusBadRequest, "unknown format %q (want json, csv or text)", format)
		}
	default:
		httpError(w, http.StatusInternalServerError, "done job has no result")
	}
}

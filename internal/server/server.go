package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"chipletnoc/internal/artifact"
	"chipletnoc/internal/durable"
	"chipletnoc/internal/experiments"
	"chipletnoc/internal/sim"
)

// JobStatus is a job's lifecycle state.
type JobStatus string

// Job lifecycle states. queued → running → done|failed|canceled, with
// suspended reachable from queued or running when the daemon shuts down
// (a suspended sim job carries a checkpoint and resumes on restart).
const (
	StatusQueued    JobStatus = "queued"
	StatusRunning   JobStatus = "running"
	StatusDone      JobStatus = "done"
	StatusFailed    JobStatus = "failed"
	StatusCanceled  JobStatus = "canceled"
	StatusSuspended JobStatus = "suspended"
)

// Job is one queued or executed submission. All mutable fields are
// guarded by the server mutex.
type Job struct {
	ID     string
	Spec   JobSpec
	Status JobStatus
	Error  string
	// Cycle is the simulated cycle reached when the job was suspended.
	Cycle         uint64
	SimResult     *experiments.SimResult
	Artifact      *experiments.Artifact
	ServingResult *experiments.ServingResult
	// Cached marks a job served from the content-addressed result cache
	// (no simulation ran for it).
	Cached bool
	// Coalesced marks a job that attached to another job's in-flight run
	// instead of starting its own.
	Coalesced bool
	// resume is the checkpoint to continue from (reloaded or suspended).
	resume []byte
	// flight is the execution this job is attached to; jobs submitted
	// with identical content addresses share one.
	flight *flight
}

// flight is one execution of one content address. Every job whose spec
// hashes to the flight's key attaches to it; the simulation runs once
// and its result is delivered to all attached members (and the cache).
// Members detach on cancel; only canceling the last member stops the
// run. All fields except cancel are guarded by the server mutex.
type flight struct {
	// key is the content address, or "" when the spec is uncacheable or
	// caching is off — an unkeyed flight never coalesces.
	key  string
	jobs []*Job
	// running flips when a worker picks the flight up; members attaching
	// after that are born running.
	running bool
	// cancel asks the run to stop at its next interrupt poll; set only
	// when the LAST member cancels.
	cancel atomic.Bool
	// resume and cycle carry the checkpoint the run continues from.
	resume []byte
	cycle  uint64
}

// lead returns the member whose spec drives the run (checkpoint cadence
// and all identity fields — which every member shares by construction).
// Callers hold s.mu and have checked the flight is non-empty.
func (fl *flight) lead() *Job { return fl.jobs[0] }

// detach removes job from the flight's member list; it reports whether
// the job was attached.
func (fl *flight) detach(job *Job) bool {
	for i, j := range fl.jobs {
		if j == job {
			fl.jobs = append(fl.jobs[:i], fl.jobs[i+1:]...)
			return true
		}
	}
	return false
}

// Config tunes a Server. Zero values pick the documented defaults.
type Config struct {
	// QueueDepth bounds the jobs waiting to run (default 16); a full
	// queue answers 429 with a Retry-After header.
	QueueDepth int
	// Workers is the worker-pool size (default 2).
	Workers int
	// StateDir, when set, persists job records and rolling checkpoints
	// so a restarted daemon — graceful or crashed — resumes or requeues
	// them. Empty disables persistence.
	StateDir string
	// RetryAfterSeconds is the Retry-After hint on 429 (default 1).
	RetryAfterSeconds int
	// JobDeadline caps one job's wall clock (0 = unlimited). A sim job
	// over the deadline stops at its next interrupt poll; an experiment
	// job (coarse-grained, uninterruptible) is failed after the fact.
	JobDeadline time.Duration
	// Cache, when set, memoizes job admission: a submission whose
	// content address is stored is answered from the cache without
	// running, concurrent identical submissions coalesce into one run,
	// and completed runs populate the store. Nil disables memoization
	// entirely (every submission runs).
	Cache *artifact.Store
}

// Server is the job service. Create with New, expose with Handler, stop
// with Shutdown.
type Server struct {
	cfg      Config
	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string
	nextID   int
	flights  map[string]*flight // key -> open (queued or running) flight
	queue    chan *flight
	draining atomic.Bool
	wg       sync.WaitGroup
	recovery RecoveryReport
}

// Submission errors, distinguished so the HTTP layer can map them to
// 429 (full) and 503 (draining).
var (
	ErrQueueFull = errors.New("job queue is full")
	ErrDraining  = errors.New("server is shutting down")
)

// jobRecordSuffix and checkpointSuffix name a job's two state files:
// <id>.job is the sealed (checksummed) JSON record, <id>.ckpt the
// self-verifying NOCSNAP checkpoint.
const (
	jobRecordSuffix  = ".job"
	checkpointSuffix = ".ckpt"
)

// persistedJob is the on-disk record of a submitted, running or
// suspended job; its checkpoint lives next to it in <id>.ckpt.
type persistedJob struct {
	ID    string  `json:"id"`
	Spec  JobSpec `json:"spec"`
	Cycle uint64  `json:"cycle"`
}

// New builds a server, recovers persisted jobs from cfg.StateDir (they
// re-enter the queue ahead of new submissions; damaged state is
// quarantined, never fatal), and starts the worker pool.
func New(cfg Config) (*Server, error) {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.RetryAfterSeconds <= 0 {
		cfg.RetryAfterSeconds = 1
	}
	s := &Server{cfg: cfg, jobs: map[string]*Job{}, flights: map[string]*flight{}}

	var reloaded []*Job
	if cfg.StateDir != "" {
		if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
			return nil, err
		}
		var err error
		if reloaded, err = s.recoverState(); err != nil {
			return nil, err
		}
	}
	if cfg.Cache != nil {
		st := cfg.Cache.Stats()
		s.note("content cache attached: %d disk entries (%d bytes) reindexed", st.DiskEntries, st.DiskBytes)
	}
	// Recovered jobs with one content address share one flight, exactly
	// as they would had they been submitted to a live daemon.
	flights := s.coalesceRecovered(reloaded)
	// The queue must hold every reloaded flight plus the configured depth
	// of new ones, so a restart never rejects its own suspended work.
	s.queue = make(chan *flight, cfg.QueueDepth+len(flights))
	for _, job := range reloaded {
		s.jobs[job.ID] = job
		s.order = append(s.order, job.ID)
	}
	for _, fl := range flights {
		s.queue <- fl
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// coalesceRecovered groups recovered jobs into flights by content
// address. The flight resumes from the furthest checkpoint any member
// carried — every member's spec reaches the same result, so the most
// progressed checkpoint serves them all.
func (s *Server) coalesceRecovered(jobs []*Job) []*flight {
	var flights []*flight
	for _, job := range jobs {
		key := s.jobKey(job.Spec)
		if fl, ok := s.flights[key]; ok {
			fl.jobs = append(fl.jobs, job)
			job.flight = fl
			job.Coalesced = true
			if job.resume != nil && (fl.resume == nil || job.Cycle > fl.cycle) {
				fl.resume, fl.cycle = job.resume, job.Cycle
			}
			s.note("job %s coalesced with recovered %s (same content address)", job.ID, fl.lead().ID)
			continue
		}
		fl := &flight{key: key, jobs: []*Job{job}, resume: job.resume, cycle: job.Cycle}
		job.flight = fl
		if key != "" {
			s.flights[key] = fl
		}
		flights = append(flights, fl)
	}
	return flights
}

// jobKey computes a spec's content address, or "" when memoization is
// off or the spec has none — an uncacheable job still runs, it just
// never coalesces or populates the store.
func (s *Server) jobKey(spec JobSpec) string {
	if s.cfg.Cache == nil {
		return ""
	}
	key, err := JobKey(spec)
	if err != nil {
		return ""
	}
	return key
}

// jobIDLess orders "job-N" IDs numerically.
func jobIDLess(a, b string) bool {
	an, aerr := strconv.Atoi(strings.TrimPrefix(a, "job-"))
	bn, berr := strconv.Atoi(strings.TrimPrefix(b, "job-"))
	if aerr == nil && berr == nil {
		return an < bn
	}
	return a < b
}

// persistJob writes a job's record (and checkpoint, when it carries
// one) through the durable layer: sealed envelopes, atomic replacement,
// fsync of file and directory. The checkpoint goes first so a crash
// between the two writes leaves an older-but-consistent pair — the
// record never references bytes that are not fully on disk. Callers
// hold s.mu, which also serializes these writes against dropPersisted.
func (s *Server) persistJob(job *Job) error {
	if s.cfg.StateDir == "" {
		return nil
	}
	rec, err := json.Marshal(persistedJob{ID: job.ID, Spec: job.Spec, Cycle: job.Cycle})
	if err != nil {
		return err
	}
	if job.resume != nil {
		if err := durable.WriteFile(filepath.Join(s.cfg.StateDir, job.ID+checkpointSuffix), job.resume, 0o644); err != nil {
			return err
		}
	}
	return durable.WriteSealed(filepath.Join(s.cfg.StateDir, job.ID+jobRecordSuffix), rec, 0o644)
}

// dropPersisted removes a job's on-disk record after it reaches a
// terminal state.
func (s *Server) dropPersisted(id string) {
	if s.cfg.StateDir == "" {
		return
	}
	os.Remove(filepath.Join(s.cfg.StateDir, id+jobRecordSuffix))
	os.Remove(filepath.Join(s.cfg.StateDir, id+checkpointSuffix))
}

// worker drains the queue until Shutdown closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for fl := range s.queue {
		s.runFlight(fl)
	}
}

// testPanicHook, when set by a test, runs at the top of a job's
// execution — the deterministic way to stage a worker panic.
var testPanicHook func(*Job)

// testRunHook, when set by a test, runs once per flight that actually
// reaches execution (past the dequeue-time cache recheck) — the
// deterministic way to count how many simulations really ran.
var testRunHook func()

// runFlight executes one dequeued flight end to end. A panic anywhere in
// the execution is isolated here: every still-attached member is marked
// failed with the stack attached and the worker survives to take the
// next flight — one misbehaving workload must never take down the whole
// daemon.
func (s *Server) runFlight(fl *flight) {
	defer func() {
		if r := recover(); r != nil {
			s.mu.Lock()
			for _, job := range fl.jobs {
				if job.Status == StatusRunning {
					job.Status = StatusFailed
					job.Error = fmt.Sprintf("worker panic: %v\n\n%s", r, debug.Stack())
					s.dropPersisted(job.ID)
				}
			}
			s.unregisterFlightLocked(fl)
			s.mu.Unlock()
		}
	}()

	s.mu.Lock()
	if len(fl.jobs) == 0 {
		// Every member canceled while the flight waited in the queue.
		s.mu.Unlock()
		return
	}
	if s.draining.Load() {
		// Shutdown drained this flight before it ever ran: suspend the
		// members as-is (with whatever checkpoint the flight already
		// carried) for the next daemon instance.
		for _, job := range fl.jobs {
			job.Status = StatusSuspended
			job.Cycle, job.resume = fl.cycle, fl.resume
			s.persistJob(job)
		}
		s.unregisterFlightLocked(fl)
		s.mu.Unlock()
		return
	}
	fl.running = true
	for _, job := range fl.jobs {
		job.Status = StatusRunning
	}
	lead := fl.lead()
	s.mu.Unlock()

	if testPanicHook != nil {
		testPanicHook(lead)
	}
	// Dequeue-time recheck: an identical flight may have completed (and
	// populated the cache) while this one waited in the queue — most
	// importantly for recovered jobs, which re-enter the queue without
	// passing through Submit's cache probe.
	if payload, ok := s.cfg.Cache.Get(fl.key); ok && s.finishFromCache(fl, payload) {
		return
	}
	if testRunHook != nil {
		testRunHook()
	}
	started := time.Now()
	switch lead.Spec.Kind {
	case "experiment":
		s.runExperimentFlight(fl, started)
	case "serving":
		s.runServingFlight(fl, started)
	default:
		s.runSimFlight(fl, started)
	}
}

// finishFromCache tries to settle every member of fl from a cached
// payload. A payload that fails to decode is deleted from the store (it
// passed the CRC but not the codec — format drift or a foreign writer)
// and the flight runs normally.
func (s *Server) finishFromCache(fl *flight, payload []byte) bool {
	c, err := DecodeCachedResult(payload)
	s.mu.Lock()
	defer s.mu.Unlock()
	if err != nil || c.Kind != fl.lead().Spec.Kind {
		s.cfg.Cache.Delete(fl.key)
		s.note("cache entry %.12s… undecodable (%v); evicted, running fresh", fl.key, err)
		return false
	}
	for _, job := range fl.jobs {
		s.applyCachedLocked(job, c)
	}
	s.unregisterFlightLocked(fl)
	return true
}

// applyCachedLocked settles one job from a decoded cache payload: done,
// marked cached, spec echo patched to the job's own normalized spec (the
// cached run agrees on every identity field, so only identity-excluded
// knobs differ — and those must echo the submission for the body to be
// byte-identical to a fresh run of it). Callers hold s.mu.
func (s *Server) applyCachedLocked(job *Job, c *CachedResult) {
	job.Status, job.Cached, job.resume = StatusDone, true, nil
	switch c.Kind {
	case "sim":
		res := *c.Sim
		res.Spec = *job.Spec.Sim
		job.SimResult = &res
	case "experiment":
		job.Artifact = c.Artifact
	case "serving":
		res := *c.Serving
		res.Doc = string(job.Spec.Serving)
		job.ServingResult = &res
	}
	s.dropPersisted(job.ID)
}

// pastDeadline reports whether a job that started at started has used
// up the configured wall-clock budget.
func (s *Server) pastDeadline(started time.Time) bool {
	return s.cfg.JobDeadline > 0 && time.Since(started) > s.cfg.JobDeadline
}

// deadlineError renders the uniform deadline failure message.
func (s *Server) deadlineError(started time.Time) string {
	return fmt.Sprintf("job exceeded its %v wall-clock deadline (ran %v)",
		s.cfg.JobDeadline, time.Since(started).Round(time.Millisecond))
}

// runExperimentFlight runs a catalog artifact. Experiments are
// coarse-grained (internally parallel, no checkpoint), so cancellation,
// shutdown and the wall-clock deadline take effect at job granularity.
func (s *Server) runExperimentFlight(fl *flight, started time.Time) {
	lead := fl.lead()
	scale, err := experiments.ParseScale(lead.Spec.Scale)
	if err != nil {
		s.finishFlight(fl, nil, func(job *Job) {
			job.Status, job.Error = StatusFailed, err.Error()
		})
		return
	}
	art, err := experiments.RunExperiment(lead.Spec.Experiment, scale)
	var payload []byte
	if err == nil && !fl.cancel.Load() && !s.pastDeadline(started) {
		payload = s.encodeForCache(fl, &CachedResult{Kind: "experiment", Artifact: art})
	}
	s.finishFlight(fl, payload, func(job *Job) {
		switch {
		case err != nil:
			job.Status, job.Error = StatusFailed, err.Error()
		case fl.cancel.Load():
			job.Status = StatusCanceled
		case s.pastDeadline(started):
			job.Status, job.Error = StatusFailed, s.deadlineError(started)
		default:
			job.Status, job.Artifact = StatusDone, art
		}
	})
}

// runServingFlight runs an open-loop serving sweep. Like experiments,
// serving sweeps are coarse-grained (the load points fan out over the
// experiment worker pool, no checkpoint), so cancellation, shutdown and
// the wall-clock deadline take effect at job granularity. The spec
// document is already canonical, so rerunning it through the
// normalizing runner is a no-op on identity.
func (s *Server) runServingFlight(fl *flight, started time.Time) {
	lead := fl.lead()
	scale, err := experiments.ParseScale(lead.Spec.Scale)
	var res *experiments.ServingResult
	if err == nil {
		res, err = experiments.RunServingDoc(string(lead.Spec.Serving), scale)
	}
	var payload []byte
	if err == nil && !fl.cancel.Load() && !s.pastDeadline(started) {
		payload = s.encodeForCache(fl, &CachedResult{Kind: "serving", Serving: res})
	}
	s.finishFlight(fl, payload, func(job *Job) {
		switch {
		case err != nil:
			job.Status, job.Error = StatusFailed, err.Error()
		case fl.cancel.Load():
			job.Status = StatusCanceled
		case s.pastDeadline(started):
			job.Status, job.Error = StatusFailed, s.deadlineError(started)
		default:
			r := *res
			r.Doc = string(job.Spec.Serving)
			job.Status, job.ServingResult = StatusDone, &r
		}
	})
}

// runSimFlight runs one simulation with cooperative interruption: a
// DELETE of the last member cancels at the next checkpoint boundary, a
// Shutdown suspends with a checkpoint that the restarted daemon resumes,
// and a wall-clock deadline fails it. When the lead spec checkpoints
// periodically and a state directory is configured, every checkpoint is
// persisted for every attached member as it is taken, so even a
// SIGKILLed daemon resumes each of them from the last completed interval.
func (s *Server) runSimFlight(fl *flight, started time.Time) {
	lead := fl.lead()
	var deadlineHit atomic.Bool
	ctl := &experiments.SimControl{Interrupt: func() experiments.InterruptKind {
		if fl.cancel.Load() {
			return experiments.CancelRun
		}
		if s.pastDeadline(started) {
			deadlineHit.Store(true)
			return experiments.CancelRun
		}
		if s.draining.Load() {
			return experiments.SuspendRun
		}
		return experiments.KeepRunning
	}}
	if s.cfg.StateDir != "" && lead.Spec.Sim.CheckpointEvery > 0 {
		ctl.OnCheckpoint = func(data []byte, cycle uint64) error {
			s.mu.Lock()
			defer s.mu.Unlock()
			fl.resume, fl.cycle = data, cycle
			for _, job := range fl.jobs {
				if job.Status != StatusRunning {
					// Raced with a cancel: don't resurrect dropped files.
					continue
				}
				job.Cycle, job.resume = cycle, data
				if err := s.persistJob(job); err != nil {
					// Persistence is best-effort while the job is healthy; a
					// full disk must not kill a running simulation.
					s.note("job %s: rolling checkpoint at cycle %d not persisted: %v", job.ID, cycle, err)
				}
			}
			return nil
		}
	}
	res, err := experiments.RunSim(*lead.Spec.Sim, fl.resume, ctl)
	if err != nil && fl.resume != nil && errors.Is(err, sim.ErrCorruptSnapshot) {
		// The resume blob was damaged in memory-to-run handoff or the
		// recovery scan's frame check missed deeper rot. Quarantine the
		// idea of resuming and rerun from scratch — determinism makes the
		// fresh run's bytes identical.
		s.mu.Lock()
		fl.resume, fl.cycle = nil, 0
		s.note("job %s: resume checkpoint rejected (%v); rerunning from cycle 0", lead.ID, err)
		s.mu.Unlock()
		res, err = experiments.RunSim(*lead.Spec.Sim, nil, ctl)
	}

	var payload []byte
	if err == nil {
		payload = s.encodeForCache(fl, &CachedResult{Kind: "sim", Sim: res})
	}
	var intr *experiments.Interrupted
	s.finishFlight(fl, payload, func(job *Job) {
		switch {
		case err == nil:
			r := *res
			r.Spec = *job.Spec.Sim
			job.Status, job.SimResult, job.resume = StatusDone, &r, nil
		case errors.Is(err, experiments.ErrCanceled):
			if deadlineHit.Load() {
				job.Status, job.Error, job.resume = StatusFailed, s.deadlineError(started), nil
				return
			}
			job.Status, job.resume = StatusCanceled, nil
		case errors.As(err, &intr):
			job.Status, job.Cycle, job.resume = StatusSuspended, intr.Cycle, intr.Checkpoint
			if perr := s.persistJob(job); perr != nil {
				job.Status, job.Error = StatusFailed, fmt.Sprintf("suspend: %v", perr)
			}
		default:
			job.Status, job.Error = StatusFailed, err.Error()
		}
	})
}

// encodeForCache renders a completed result for the store, or nil when
// this flight's result is uncacheable. Encoding failures are advisory:
// the members still get their results, the store just isn't populated.
func (s *Server) encodeForCache(fl *flight, c *CachedResult) []byte {
	if fl.key == "" {
		return nil
	}
	payload, err := c.Encode()
	if err != nil {
		return nil
	}
	return payload
}

// finishFlight settles every still-attached member under one lock hold:
// the cache is populated first, then each member's terminal transition
// applies, then the flight unregisters. Submit holds the same lock for
// its cache-then-flights probe, so there is no window where a new
// identical submission sees neither the open flight nor the cached
// result. Jobs reaching a terminal state shed their on-disk record and
// checkpoint.
func (s *Server) finishFlight(fl *flight, cachePayload []byte, apply func(*Job)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cachePayload != nil {
		if err := s.cfg.Cache.Put(fl.key, cachePayload); err != nil {
			s.note("cache entry %.12s… not persisted: %v", fl.key, err)
		}
	}
	for _, job := range fl.jobs {
		apply(job)
		switch job.Status {
		case StatusDone, StatusFailed, StatusCanceled:
			s.dropPersisted(job.ID)
		}
	}
	s.unregisterFlightLocked(fl)
}

// unregisterFlightLocked removes fl from the open-flight index so later
// identical submissions start (or hit the cache) fresh. Callers hold
// s.mu. Idempotent; a newer flight under the same key is left alone.
func (s *Server) unregisterFlightLocked(fl *flight) {
	if fl.key != "" && s.flights[fl.key] == fl {
		delete(s.flights, fl.key)
	}
}

// Shutdown stops accepting jobs, suspends everything queued or running
// (sim jobs checkpoint at their next interrupt poll), and waits for the
// workers to drain. After Shutdown, a New on the same StateDir resumes
// the suspended jobs.
func (s *Server) Shutdown() {
	// Closing the queue under the lock keeps Submit's non-blocking send
	// from racing a send-on-closed-channel panic. Idempotent: a second
	// Shutdown just waits for the drain.
	s.mu.Lock()
	if !s.draining.Swap(true) {
		close(s.queue)
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// Submit admits a job spec. The spec is normalized here — EVERY
// admission path, HTTP and programmatic alike, goes through Submit, so
// a job's identity, its persisted record and its log lines always agree
// on the canonical spelling. With a cache configured, admission is
// memoized: a stored content address answers instantly (the job is born
// done, no queue slot consumed), an open flight for the address absorbs
// the job as a coalesced member, and only a genuinely new address takes
// a queue slot. Returns ErrQueueFull / ErrDraining for the two refusals.
func (s *Server) Submit(spec JobSpec) (*Job, error) {
	spec, err := spec.Normalize()
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining.Load() {
		return nil, ErrDraining
	}
	key := s.jobKey(spec)
	job := &Job{ID: fmt.Sprintf("job-%d", s.nextID), Spec: spec, Status: StatusQueued}

	// Memoized admission, probe one: the store. (Get touches the disk
	// tier on a memory miss; that IO rides under s.mu, which is fine at
	// this service's scale and is what makes the probe atomic with
	// finishFlight's populate-then-unregister.)
	if payload, ok := s.cfg.Cache.Get(key); ok {
		if c, derr := DecodeCachedResult(payload); derr == nil && c.Kind == spec.Kind {
			s.register(job)
			s.applyCachedLocked(job, c)
			return job, nil
		}
		s.cfg.Cache.Delete(key)
		s.note("cache entry %.12s… undecodable; evicted, running fresh", key)
	}
	// Probe two: an open flight for the same address absorbs the job.
	if fl, ok := s.flights[key]; ok {
		job.flight, job.Coalesced = fl, true
		if fl.running {
			job.Status = StatusRunning
		}
		fl.jobs = append(fl.jobs, job)
		s.register(job)
		if err := s.persistJob(job); err != nil {
			s.note("job %s: admission record not persisted: %v", job.ID, err)
		}
		return job, nil
	}
	// A new address: take a queue slot.
	fl := &flight{key: key, jobs: []*Job{job}}
	select {
	case s.queue <- fl:
	default:
		return nil, ErrQueueFull
	}
	job.flight = fl
	if key != "" {
		s.flights[key] = fl
	}
	s.register(job)
	// Persist the record at admission so even a SIGKILLed daemon requeues
	// every accepted job on restart. Best-effort: a full disk degrades
	// durability, not service. (The write happens under s.mu, which
	// orders it before any worker's dropPersisted for this job.)
	if err := s.persistJob(job); err != nil {
		s.note("job %s: admission record not persisted: %v", job.ID, err)
	}
	return job, nil
}

// register indexes a freshly admitted job. Callers hold s.mu.
func (s *Server) register(job *Job) {
	s.nextID++
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
}

// Cancel requests a job stop. A queued or coalesced job detaches and
// cancels immediately — other members of its flight are untouched; only
// canceling the LAST member asks the running simulation itself to stop
// at its next interrupt poll. A suspended job is dropped along with its
// checkpoint. The bool reports whether the job exists.
func (s *Server) Cancel(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	if !ok {
		return nil, false
	}
	switch job.Status {
	case StatusQueued, StatusRunning:
		fl := job.flight
		if job.Status == StatusRunning && len(fl.jobs) == 1 && fl.jobs[0] == job {
			// Last member of a live run: cooperative stop. The flight
			// unregisters now so an identical submission arriving before
			// the stop lands starts fresh instead of joining a doomed run.
			fl.cancel.Store(true)
			s.unregisterFlightLocked(fl)
			break
		}
		fl.detach(job)
		job.Status = StatusCanceled
		job.resume = nil
		s.dropPersisted(id)
		if len(fl.jobs) == 0 {
			// Emptied while still queued: the worker will skip the husk.
			s.unregisterFlightLocked(fl)
		}
	case StatusSuspended:
		job.Status = StatusCanceled
		job.resume = nil
		s.dropPersisted(id)
	}
	return job, true
}

// Recovery returns a copy of the boot-time recovery report.
func (s *Server) Recovery() RecoveryReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := s.recovery
	rec.Notes = append([]string(nil), s.recovery.Notes...)
	return rec
}

// Get returns a job by ID.
func (s *Server) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	job, ok := s.jobs[id]
	return job, ok
}

// jobView is the status JSON for one job.
type jobView struct {
	ID     string    `json:"id"`
	Kind   string    `json:"kind"`
	Status JobStatus `json:"status"`
	Error  string    `json:"error,omitempty"`
	Cycle  uint64    `json:"cycle,omitempty"`
	// Cached: served from the content-addressed store, no run happened.
	Cached bool `json:"cached,omitempty"`
	// Coalesced: shared another identical submission's run.
	Coalesced bool `json:"coalesced,omitempty"`
}

// viewLocked renders a job's status snapshot. Callers hold s.mu.
func viewLocked(job *Job) jobView {
	return jobView{ID: job.ID, Kind: job.Spec.Kind, Status: job.Status, Error: job.Error,
		Cycle: job.Cycle, Cached: job.Cached, Coalesced: job.Coalesced}
}

// view renders a job's status snapshot under the lock.
func (s *Server) view(job *Job) jobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	return viewLocked(job)
}

// Handler returns the HTTP API:
//
//	POST   /jobs             submit a JobSpec (202, or 429 + Retry-After);
//	                         X-Nocd-Cache: hit|coalesced|miss when a
//	                         cache is configured
//	GET    /jobs             list job statuses
//	GET    /jobs/{id}        one job's status
//	GET    /jobs/{id}/result result: ?format=json|csv|text, ?file= for
//	                         experiment CSV artifacts
//	DELETE /jobs/{id}        cancel (cooperative for running sim jobs)
//	GET    /healthz          liveness + queue depth (always 200 while up)
//	GET    /readyz           readiness: queue utilization, cache stats
//	                         and the boot recovery report; 503 draining
//
// Every route runs under a recovery middleware: a panicking handler
// answers 500 with a JSON error instead of tearing down the connection
// (and, with it, operator trust).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleDelete)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	return recoverMiddleware(mux)
}

// recoverMiddleware turns a handler panic into a 500 JSON error so one
// bad request cannot crash the daemon. http.ErrAbortHandler is the
// net/http-sanctioned way to abort a response and is re-raised.
func recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler {
					panic(rec)
				}
				httpError(w, http.StatusInternalServerError, "internal error: %v", rec)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// healthView is the /healthz body.
type healthView struct {
	Status     string `json:"status"`
	QueueDepth int    `json:"queue_depth"`
}

// readyView is the /readyz body.
type readyView struct {
	Status        string          `json:"status"`
	QueueDepth    int             `json:"queue_depth"`
	QueueCapacity int             `json:"queue_capacity"`
	Workers       int             `json:"workers"`
	Cache         *artifact.Stats `json:"cache,omitempty"`
	Recovery      RecoveryReport  `json:"recovery"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, healthView{Status: "ok", QueueDepth: len(s.queue)})
}

func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	rec := s.recovery
	rec.Notes = append([]string(nil), s.recovery.Notes...)
	s.mu.Unlock()
	v := readyView{
		Status:        "ready",
		QueueDepth:    len(s.queue),
		QueueCapacity: s.cfg.QueueDepth,
		Workers:       s.cfg.Workers,
		Recovery:      rec,
	}
	if s.cfg.Cache != nil {
		st := s.cfg.Cache.Stats()
		v.Cache = &st
	}
	status := http.StatusOK
	if s.draining.Load() {
		v.Status = "draining"
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, v)
}

// writeJSON writes one JSON response.
func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// httpError writes a JSON error body.
func httpError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	body, err := readBody(w, r)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			httpError(w, http.StatusRequestEntityTooLarge,
				"job spec exceeds the %d-byte limit", maxJobSpecBytes)
			return
		}
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	spec, err := ParseJobSpec(body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	job, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfterSeconds))
		httpError(w, http.StatusTooManyRequests, "queue is full (%d jobs waiting); retry later", s.cfg.QueueDepth)
		return
	case errors.Is(err, ErrDraining):
		httpError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	view := s.view(job)
	if s.cfg.Cache != nil {
		w.Header().Set("X-Nocd-Cache", admissionDisposition(view))
	}
	writeJSON(w, http.StatusAccepted, view)
}

// admissionDisposition names how an admitted job was answered, for the
// X-Nocd-Cache response header.
func admissionDisposition(v jobView) string {
	switch {
	case v.Cached:
		return "hit"
	case v.Coalesced:
		return "coalesced"
	default:
		return "miss"
	}
}

// readBody reads a request body with the job-spec size cap. Passing the
// ResponseWriter lets MaxBytesReader close the connection after an
// over-limit body, so the client stops uploading; a *http.MaxBytesError
// propagates to the caller, which maps it to 413.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	return io.ReadAll(http.MaxBytesReader(w, r.Body, maxJobSpecBytes))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]jobView, 0, len(s.order))
	for _, id := range s.order {
		views = append(views, viewLocked(s.jobs[id]))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, s.view(job))
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, s.view(job))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Get(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, "no such job")
		return
	}
	s.mu.Lock()
	status := job.Status
	res, art, srv := job.SimResult, job.Artifact, job.ServingResult
	cached := job.Cached
	s.mu.Unlock()
	if status != StatusDone {
		httpError(w, http.StatusConflict, "job is %s, not done", status)
		return
	}
	if s.cfg.Cache != nil {
		disposition := "miss"
		if cached {
			disposition = "hit"
		}
		w.Header().Set("X-Nocd-Cache", disposition)
	}

	format := r.URL.Query().Get("format")
	if format == "" {
		format = "json"
	}
	switch {
	case res != nil:
		switch format {
		case "json":
			writeJSON(w, http.StatusOK, res)
		case "csv":
			w.Header().Set("Content-Type", "text/csv")
			fmt.Fprint(w, res.CSV())
		case "text":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, res.Render())
		default:
			httpError(w, http.StatusBadRequest, "unknown format %q (want json, csv or text)", format)
		}
	case srv != nil:
		switch format {
		case "json":
			writeJSON(w, http.StatusOK, srv)
		case "csv":
			w.Header().Set("Content-Type", "text/csv")
			fmt.Fprint(w, srv.CSV())
		case "text":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, srv.Render())
		default:
			httpError(w, http.StatusBadRequest, "unknown format %q (want json, csv or text)", format)
		}
	case art != nil:
		switch format {
		case "json":
			writeJSON(w, http.StatusOK, art)
		case "text":
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fmt.Fprint(w, art.Text)
		case "csv":
			file := r.URL.Query().Get("file")
			if file == "" && len(art.CSVs) == 1 {
				for f := range art.CSVs {
					file = f
				}
			}
			data, ok := art.CSVs[file]
			if !ok {
				files := make([]string, 0, len(art.CSVs))
				for f := range art.CSVs {
					files = append(files, f)
				}
				sort.Strings(files)
				httpError(w, http.StatusBadRequest, "pick a CSV with ?file=; this artifact has: %s", strings.Join(files, ", "))
				return
			}
			w.Header().Set("Content-Type", "text/csv")
			fmt.Fprint(w, data)
		default:
			httpError(w, http.StatusBadRequest, "unknown format %q (want json, csv or text)", format)
		}
	default:
		httpError(w, http.StatusInternalServerError, "done job has no result")
	}
}

// The cache differential layer: proof that memoized admission is
// invisible in the bytes. For every reference fabric, a warm (cached)
// submission must return byte-identical CSV, JSON and text bodies to the
// cold run; specs differing only in identity-excluded knobs (partition
// count, checkpoint cadence) must hit; specs differing in any identity
// field (seed) must miss; and coalesced concurrent submissions must run
// the simulation exactly once while every waiter gets the same bytes.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"chipletnoc/internal/artifact"
	"chipletnoc/internal/experiments"
)

// The reference fabrics, shared with internal/config's partition
// differential suite: a bridged multi-ring chain, a mesh-of-rings, a
// hub-and-spoke, and the mesh again under a kill-and-repair fault
// schedule with the watchdog armed.
const cacheMultiringSpec = `{
  "name": "diff-multiring",
  "rings": [
    {"name": "r0", "positions": 12, "full": true},
    {"name": "r1", "positions": 12, "full": true},
    {"name": "r2", "positions": 12, "full": true},
    {"name": "r3", "positions": 12, "full": true}
  ],
  "devices": [
    {"name": "c0", "type": "requester", "ring": "r0", "position": 0,
     "outstanding": 8, "rate": 0.8, "readFraction": 0.7, "lineBytes": 64, "targets": ["m3"]},
    {"name": "c1", "type": "requester", "ring": "r1", "position": 2,
     "outstanding": 8, "rate": 0.8, "readFraction": 0.5, "lineBytes": 64, "targets": ["m0", "m3"]},
    {"name": "c2", "type": "requester", "ring": "r2", "position": 4,
     "outstanding": 8, "rate": 0.8, "readFraction": 0.6, "lineBytes": 64, "targets": ["m0"]},
    {"name": "m0", "type": "memory", "ring": "r0", "position": 6,
     "accessCycles": 20, "bytesPerCycle": 64, "queueDepth": 16},
    {"name": "m3", "type": "memory", "ring": "r3", "position": 6,
     "accessCycles": 20, "bytesPerCycle": 64, "queueDepth": 16}
  ],
  "bridges": [
    {"name": "b01", "type": "rbrg-l2",
     "stations": [{"ring": "r0", "position": 11}, {"ring": "r1", "position": 0}]},
    {"name": "b12", "type": "rbrg-l2",
     "stations": [{"ring": "r1", "position": 11}, {"ring": "r2", "position": 0}]},
    {"name": "b23", "type": "rbrg-l2",
     "stations": [{"ring": "r2", "position": 11}, {"ring": "r3", "position": 0}]}
  ]
}`

const cacheMeshSpec = `{
  "name": "diff-mesh",
  "rings": [
    {"name": "v0", "positions": 10, "full": true},
    {"name": "v1", "positions": 10, "full": true},
    {"name": "h0", "positions": 10, "full": true},
    {"name": "h1", "positions": 10, "full": true}
  ],
  "devices": [
    {"name": "c00", "type": "requester", "ring": "v0", "position": 0,
     "outstanding": 6, "rate": 0.9, "readFraction": 0.5, "lineBytes": 128, "targets": ["l20", "l21"]},
    {"name": "c10", "type": "requester", "ring": "v1", "position": 0,
     "outstanding": 6, "rate": 0.9, "readFraction": 0.5, "lineBytes": 128, "targets": ["l21", "l20"]},
    {"name": "l20", "type": "memory", "ring": "h0", "position": 5,
     "accessCycles": 8, "bytesPerCycle": 128, "queueDepth": 32},
    {"name": "l21", "type": "memory", "ring": "h1", "position": 5,
     "accessCycles": 8, "bytesPerCycle": 128, "queueDepth": 32}
  ],
  "bridges": [
    {"name": "x00", "type": "rbrg-l1",
     "stations": [{"ring": "v0", "position": 3}, {"ring": "h0", "position": 0}]},
    {"name": "x01", "type": "rbrg-l1",
     "stations": [{"ring": "v0", "position": 7}, {"ring": "h1", "position": 0}]},
    {"name": "x10", "type": "rbrg-l1",
     "stations": [{"ring": "v1", "position": 3}, {"ring": "h0", "position": 9}]},
    {"name": "x11", "type": "rbrg-l1",
     "stations": [{"ring": "v1", "position": 7}, {"ring": "h1", "position": 9}]}
  ]
}`

const cacheHubSpec = `{
  "name": "diff-hub",
  "rings": [
    {"name": "hub", "positions": 16, "full": true},
    {"name": "s0", "positions": 6, "full": true},
    {"name": "s1", "positions": 6, "full": true},
    {"name": "s2", "positions": 6, "full": true}
  ],
  "devices": [
    {"name": "c0", "type": "requester", "ring": "s0", "position": 2,
     "outstanding": 4, "rate": 0.7, "readFraction": 0.8, "lineBytes": 64, "targets": ["dram"]},
    {"name": "c1", "type": "requester", "ring": "s1", "position": 2,
     "outstanding": 4, "rate": 0.7, "readFraction": 0.4, "lineBytes": 64, "targets": ["dram"]},
    {"name": "c2", "type": "requester", "ring": "s2", "position": 2,
     "outstanding": 4, "rate": 0.7, "readFraction": 0.6, "lineBytes": 64, "targets": ["dram"]},
    {"name": "dram", "type": "memory", "ring": "hub", "position": 8,
     "accessCycles": 40, "bytesPerCycle": 32, "queueDepth": 24}
  ],
  "bridges": [
    {"name": "h0", "type": "rbrg-l2",
     "stations": [{"ring": "hub", "position": 0}, {"ring": "s0", "position": 0}]},
    {"name": "h1", "type": "rbrg-l2",
     "stations": [{"ring": "hub", "position": 5}, {"ring": "s1", "position": 0}]},
    {"name": "h2", "type": "rbrg-l2",
     "stations": [{"ring": "hub", "position": 11}, {"ring": "s2", "position": 0}]}
  ]
}`

const cacheMeshFaultSpec = `{
  "name": "diff-mesh-faults",
  "rings": [
    {"name": "v0", "positions": 10, "full": true},
    {"name": "v1", "positions": 10, "full": true},
    {"name": "h0", "positions": 10, "full": true},
    {"name": "h1", "positions": 10, "full": true}
  ],
  "devices": [
    {"name": "c00", "type": "requester", "ring": "v0", "position": 0,
     "outstanding": 6, "rate": 0.9, "readFraction": 0.5, "lineBytes": 128,
     "retryTimeout": 400, "retryMax": 8, "targets": ["l20", "l21"]},
    {"name": "c10", "type": "requester", "ring": "v1", "position": 0,
     "outstanding": 6, "rate": 0.9, "readFraction": 0.5, "lineBytes": 128,
     "retryTimeout": 400, "retryMax": 8, "targets": ["l21", "l20"]},
    {"name": "l20", "type": "memory", "ring": "h0", "position": 5,
     "accessCycles": 8, "bytesPerCycle": 128, "queueDepth": 32},
    {"name": "l21", "type": "memory", "ring": "h1", "position": 5,
     "accessCycles": 8, "bytesPerCycle": 128, "queueDepth": 32}
  ],
  "bridges": [
    {"name": "x00", "type": "rbrg-l1",
     "stations": [{"ring": "v0", "position": 3}, {"ring": "h0", "position": 0}]},
    {"name": "x01", "type": "rbrg-l1",
     "stations": [{"ring": "v0", "position": 7}, {"ring": "h1", "position": 0}]},
    {"name": "x10", "type": "rbrg-l1",
     "stations": [{"ring": "v1", "position": 3}, {"ring": "h0", "position": 9}]},
    {"name": "x11", "type": "rbrg-l1",
     "stations": [{"ring": "v1", "position": 7}, {"ring": "h1", "position": 9}]}
  ],
  "faults": {
    "watchdogCycles": 600,
    "events": [
      {"at": 400, "kind": "kill-bridge", "bridge": "x00", "repairAt": 1200},
      {"at": 700, "kind": "drop-flit"},
      {"at": 900, "kind": "corrupt-flit"}
    ]
  }
}`

// testStore opens a disk-backed artifact store in a temp dir.
func testStore(t *testing.T) *artifact.Store {
	t.Helper()
	store, err := artifact.Open(artifact.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	return store
}

// submitJob POSTs a job spec and returns its view plus the X-Nocd-Cache
// disposition header.
func submitJob(t *testing.T, base string, body []byte) (jobView, string) {
	t.Helper()
	var v jobView
	resp := doJSON(t, "POST", base+"/jobs", body, &v)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs: HTTP %d", resp.StatusCode)
	}
	return v, resp.Header.Get("X-Nocd-Cache")
}

// simBodies fetches all three rendered result bodies for a done sim job.
type simBodies struct{ json, csv, text string }

func fetchBodies(t *testing.T, base, id string) simBodies {
	t.Helper()
	return simBodies{
		json: fetchText(t, base+"/jobs/"+id+"/result?format=json", 200),
		csv:  fetchText(t, base+"/jobs/"+id+"/result?format=csv", 200),
		text: fetchText(t, base+"/jobs/"+id+"/result?format=text", 200),
	}
}

// customBody builds a sim-job submission around a custom config
// document, optionally injecting the behaviour-neutral partitions knob.
func customBody(t *testing.T, configDoc string, cycles, metricsInterval uint64, partitions int) []byte {
	t.Helper()
	dec := json.NewDecoder(strings.NewReader(configDoc))
	dec.UseNumber()
	var m map[string]interface{}
	if err := dec.Decode(&m); err != nil {
		t.Fatal(err)
	}
	if partitions > 0 {
		m[`partitions`] = json.Number(fmt.Sprint(partitions))
	}
	doc, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	sim := map[string]interface{}{"topology": "custom", "cycles": cycles, "config": string(doc)}
	if metricsInterval > 0 {
		sim["metrics_interval"] = metricsInterval
	}
	body, err := json.Marshal(map[string]interface{}{"kind": "sim", "sim": sim})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// withSeed rewrites a config document's top-level seed — the smallest
// identity-field change a custom spec admits.
func withSeed(t *testing.T, configDoc string, seed uint64) string {
	t.Helper()
	var m map[string]interface{}
	if err := json.Unmarshal([]byte(configDoc), &m); err != nil {
		t.Fatal(err)
	}
	m["seed"] = json.Number(fmt.Sprint(seed))
	doc, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(doc)
}

// TestCacheDifferentialByteIdentity is the tentpole differential suite:
// for each reference fabric, cold vs warm bodies are compared byte for
// byte across every format, an identity-excluded variant (partition
// hint at 4 vs 1, or checkpoint cadence) must hit, and a seed change
// must miss.
func TestCacheDifferentialByteIdentity(t *testing.T) {
	cases := []struct {
		name string
		// cold and excluded must share a content address; seeded must not.
		cold, excluded, seeded []byte
	}{
		{
			name:     "ai-processor",
			cold:     []byte(`{"kind":"sim","sim":{"topology":"ai-processor","cycles":2000,"metrics_interval":500}}`),
			excluded: []byte(`{"sim":{"metrics_interval":500,"cycles":2000,"checkpoint_every":256,"topology":"ai-processor","scale":"quick"}}`),
			seeded:   []byte(`{"kind":"sim","sim":{"topology":"ai-processor","cycles":2000,"metrics_interval":500,"seed":99}}`),
		},
		{
			name:     "server-cpu",
			cold:     []byte(`{"kind":"sim","sim":{"topology":"server-cpu","cycles":2000}}`),
			excluded: []byte(`{"kind":"sim","sim":{"topology":"server-cpu","cycles":2000,"checkpoint_every":512}}`),
			seeded:   []byte(`{"kind":"sim","sim":{"topology":"server-cpu","cycles":2000,"seed":99}}`),
		},
		{
			name:     "multiring",
			cold:     customBody(t, cacheMultiringSpec, 2000, 500, 1),
			excluded: customBody(t, cacheMultiringSpec, 2000, 500, 4),
			seeded:   customBody(t, withSeed(t, cacheMultiringSpec, 99), 2000, 500, 1),
		},
		{
			name:     "mesh",
			cold:     customBody(t, cacheMeshSpec, 2000, 0, 1),
			excluded: customBody(t, cacheMeshSpec, 2000, 0, 4),
			seeded:   customBody(t, withSeed(t, cacheMeshSpec, 99), 2000, 0, 1),
		},
		{
			name:     "hub",
			cold:     customBody(t, cacheHubSpec, 2000, 0, 1),
			excluded: customBody(t, cacheHubSpec, 2000, 0, 4),
			seeded:   customBody(t, withSeed(t, cacheHubSpec, 99), 2000, 0, 1),
		},
		{
			// Fault schedules run mid-suite repair with the watchdog armed;
			// 1500 cycles covers kill (400) through repair (1200).
			name:     "mesh-with-faults",
			cold:     customBody(t, cacheMeshFaultSpec, 1500, 0, 1),
			excluded: customBody(t, cacheMeshFaultSpec, 1500, 0, 4),
			seeded:   customBody(t, withSeed(t, cacheMeshFaultSpec, 99), 1500, 0, 1),
		},
	}

	s, ts := testServer(t, Config{Cache: testStore(t)})
	defer s.Shutdown()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cold, disp := submitJob(t, ts.URL, tc.cold)
			if disp != "miss" {
				t.Fatalf("cold submission dispositioned %q, want miss", disp)
			}
			waitFor(t, ts.URL, cold.ID, func(st JobStatus) bool { return st == StatusDone })
			coldBodies := fetchBodies(t, ts.URL, cold.ID)

			// Warm: the identical spec must be answered from the cache,
			// born done, byte-identical in every format.
			warm, disp := submitJob(t, ts.URL, tc.cold)
			if disp != "hit" || !warm.Cached || warm.Status != StatusDone {
				t.Fatalf("warm submission = %+v disposition %q, want an instant cached hit", warm, disp)
			}
			warmBodies := fetchBodies(t, ts.URL, warm.ID)
			if warmBodies != coldBodies {
				t.Fatalf("warm bodies differ from cold:\ncold %+v\nwarm %+v", coldBodies, warmBodies)
			}

			// Identity-excluded variant: hits, and every format that does
			// not echo the spec is byte-identical; the JSON result differs
			// only in its spec echo.
			vrt, disp := submitJob(t, ts.URL, tc.excluded)
			if disp != "hit" || !vrt.Cached {
				t.Fatalf("identity-excluded variant dispositioned %q (cached=%v), want hit", disp, vrt.Cached)
			}
			vrtBodies := fetchBodies(t, ts.URL, vrt.ID)
			if vrtBodies.csv != coldBodies.csv || vrtBodies.text != coldBodies.text {
				t.Fatalf("variant CSV/text differ from cold:\ncold %+v\nvariant %+v", coldBodies, vrtBodies)
			}
			var coldRes, vrtRes experiments.SimResult
			if err := json.Unmarshal([]byte(coldBodies.json), &coldRes); err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal([]byte(vrtBodies.json), &vrtRes); err != nil {
				t.Fatal(err)
			}
			coldRes.Spec, vrtRes.Spec = experiments.SimSpec{}, experiments.SimSpec{}
			if !reflect.DeepEqual(coldRes, vrtRes) {
				t.Fatalf("variant result differs beyond the spec echo:\ncold %+v\nvariant %+v", coldRes, vrtRes)
			}

			// Identity change: a different seed must miss. Cancel it —
			// this test only cares about admission, not the run.
			seeded, disp := submitJob(t, ts.URL, tc.seeded)
			if disp != "miss" || seeded.Cached {
				t.Fatalf("seed change dispositioned %q (cached=%v), want miss", disp, seeded.Cached)
			}
			doJSON(t, "DELETE", ts.URL+"/jobs/"+seeded.ID, nil, nil)
		})
	}
}

// TestCacheServedResultMatchesFreshRun closes the loop the differential
// suite argues by composition: a cached body served for a spec that
// differs in the partition hint is byte-identical to actually RUNNING
// that spec — not just to the cold run that populated the cache.
func TestCacheServedResultMatchesFreshRun(t *testing.T) {
	s, ts := testServer(t, Config{Cache: testStore(t)})
	defer s.Shutdown()
	cold, disp := submitJob(t, ts.URL, customBody(t, cacheMeshSpec, 2000, 300, 1))
	if disp != "miss" {
		t.Fatalf("cold disposition %q", disp)
	}
	waitFor(t, ts.URL, cold.ID, func(st JobStatus) bool { return st == StatusDone })

	warmAt4 := customBody(t, cacheMeshSpec, 2000, 300, 4)
	warm, disp := submitJob(t, ts.URL, warmAt4)
	if disp != "hit" {
		t.Fatalf("partition-hint variant disposition %q, want hit", disp)
	}
	cachedBodies := fetchBodies(t, ts.URL, warm.ID)

	// An uncached server runs the exact same 4-partition spec for real.
	s2, ts2 := testServer(t, Config{})
	defer s2.Shutdown()
	fresh, _ := submitJob(t, ts2.URL, warmAt4)
	waitFor(t, ts2.URL, fresh.ID, func(st JobStatus) bool { return st == StatusDone })
	freshBodies := fetchBodies(t, ts2.URL, fresh.ID)
	if cachedBodies != freshBodies {
		t.Fatalf("cached bodies differ from a fresh run of the same spec:\ncached %+v\nfresh %+v", cachedBodies, freshBodies)
	}
}

// gateFlights plugs every flight at the top of its execution until the
// returned release func runs — the deterministic way to hold a run open
// while the test stages coalescing or cancellation around it. Cleanup
// opens the gate, drains the server (Shutdown is idempotent) and only
// then clears the hook, so no live worker races the unhooking.
func gateFlights(t *testing.T, s *Server) func() {
	t.Helper()
	gate := make(chan struct{})
	testPanicHook = func(*Job) { <-gate }
	var once sync.Once
	release := func() { once.Do(func() { close(gate) }) }
	t.Cleanup(func() {
		release()
		s.Shutdown()
		testPanicHook = nil
	})
	return release
}

// TestConcurrentIdenticalSubmitsRunOnce: N concurrent identical
// submissions must coalesce into exactly one simulation, and every
// waiter must receive byte-identical bodies. Run under -race in CI.
func TestConcurrentIdenticalSubmitsRunOnce(t *testing.T) {
	s, ts := testServer(t, Config{Cache: testStore(t), Workers: 2})
	release := gateFlights(t, s)
	var runs int32
	var runsMu sync.Mutex
	testRunHook = func() { runsMu.Lock(); runs++; runsMu.Unlock() }
	defer func() { testRunHook = nil }()

	const n = 8
	body := []byte(`{"kind":"sim","sim":{"topology":"ai-processor","cycles":1500}}`)
	views := make([]jobView, n)
	disps := make([]string, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// No t.Fatal off the test goroutine: record and check after.
			resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				errs[i] = fmt.Errorf("HTTP %d", resp.StatusCode)
				return
			}
			disps[i] = resp.Header.Get("X-Nocd-Cache")
			errs[i] = json.NewDecoder(resp.Body).Decode(&views[i])
		}(i)
	}
	wg.Wait()
	release()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submission %d: %v", i, err)
		}
	}

	misses, coalesced := 0, 0
	for _, d := range disps {
		switch d {
		case "miss":
			misses++
		case "coalesced":
			coalesced++
		default:
			t.Fatalf("unexpected disposition %q (all submissions raced the gated run)", d)
		}
	}
	if misses != 1 || coalesced != n-1 {
		t.Fatalf("dispositions = %v, want exactly 1 miss and %d coalesced", disps, n-1)
	}

	var first simBodies
	for i, v := range views {
		waitFor(t, ts.URL, v.ID, func(st JobStatus) bool { return st == StatusDone })
		bodies := fetchBodies(t, ts.URL, v.ID)
		if i == 0 {
			first = bodies
			continue
		}
		if bodies != first {
			t.Fatalf("submission %d got different bytes:\nfirst %+v\n got  %+v", i, first, bodies)
		}
	}
	runsMu.Lock()
	got := runs
	runsMu.Unlock()
	if got != 1 {
		t.Fatalf("%d simulations ran for %d identical submissions, want exactly 1", got, n)
	}
}

// TestCoalescedCancelIsolation: canceling one coalesced member detaches
// it immediately and must not cancel — or even perturb — the shared run;
// canceling the LAST member stops the run itself.
func TestCoalescedCancelIsolation(t *testing.T) {
	s, ts := testServer(t, Config{Cache: testStore(t), Workers: 1})
	release := gateFlights(t, s)

	body := []byte(`{"kind":"sim","sim":{"topology":"ai-processor","cycles":1500}}`)
	a, _ := submitJob(t, ts.URL, body)
	waitFor(t, ts.URL, a.ID, func(st JobStatus) bool { return st == StatusRunning })
	b, disp := submitJob(t, ts.URL, body)
	if disp != "coalesced" {
		t.Fatalf("second submission dispositioned %q, want coalesced", disp)
	}

	var bView jobView
	doJSON(t, "DELETE", ts.URL+"/jobs/"+b.ID, nil, &bView)
	if bView.Status != StatusCanceled {
		t.Fatalf("coalesced member is %s after cancel, want canceled immediately", bView.Status)
	}
	release()

	// The survivor completes with a real result; the canceled member
	// stays canceled and serves nothing.
	got := waitFor(t, ts.URL, a.ID, func(st JobStatus) bool { return st == StatusDone })
	if got.Status != StatusDone {
		t.Fatalf("survivor ended %s", got.Status)
	}
	fetchBodies(t, ts.URL, a.ID)
	fetchText(t, ts.URL+"/jobs/"+b.ID+"/result", http.StatusConflict)

	// Last-member cancel: a fresh spec, canceled mid-run, must stop.
	release2 := gateFlights(t, s)
	c, _ := submitJob(t, ts.URL, []byte(`{"kind":"sim","sim":{"topology":"ai-processor","cycles":1500,"seed":5}}`))
	waitFor(t, ts.URL, c.ID, func(st JobStatus) bool { return st == StatusRunning })
	doJSON(t, "DELETE", ts.URL+"/jobs/"+c.ID, nil, nil)
	release2()
	waitFor(t, ts.URL, c.ID, func(st JobStatus) bool { return st == StatusCanceled })
}

// TestCacheSurvivesRestart: a store reopened over the same directory
// serves the previous daemon's results from the disk tier, byte for
// byte — the in-process version of the CI e2e-cache restart flow.
func TestCacheSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	body := []byte(`{"kind":"sim","sim":{"topology":"server-cpu","cycles":1500}}`)

	store1, err := artifact.Open(artifact.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s1, ts1 := testServer(t, Config{Cache: store1})
	cold, _ := submitJob(t, ts1.URL, body)
	waitFor(t, ts1.URL, cold.ID, func(st JobStatus) bool { return st == StatusDone })
	coldBodies := fetchBodies(t, ts1.URL, cold.ID)
	s1.Shutdown()

	store2, err := artifact.Open(artifact.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s2, ts2 := testServer(t, Config{Cache: store2})
	defer s2.Shutdown()
	warm, disp := submitJob(t, ts2.URL, body)
	if disp != "hit" || !warm.Cached {
		t.Fatalf("restarted daemon dispositioned %q (cached=%v), want a disk-tier hit", disp, warm.Cached)
	}
	if warmBodies := fetchBodies(t, ts2.URL, warm.ID); warmBodies != coldBodies {
		t.Fatalf("disk-tier bodies differ:\ncold %+v\nwarm %+v", coldBodies, warmBodies)
	}
}

// TestExperimentJobsAreCached: the experiment kind memoizes too, and a
// cached artifact serves every format byte-identically.
func TestExperimentJobsAreCached(t *testing.T) {
	s, ts := testServer(t, Config{Cache: testStore(t)})
	defer s.Shutdown()
	body := []byte(`{"kind":"experiment","experiment":"table5","scale":"quick"}`)
	cold, disp := submitJob(t, ts.URL, body)
	if disp != "miss" {
		t.Fatalf("cold experiment dispositioned %q", disp)
	}
	waitFor(t, ts.URL, cold.ID, func(st JobStatus) bool { return st == StatusDone })
	coldJSON := fetchText(t, ts.URL+"/jobs/"+cold.ID+"/result?format=json", 200)
	coldText := fetchText(t, ts.URL+"/jobs/"+cold.ID+"/result?format=text", 200)

	warm, disp := submitJob(t, ts.URL, body)
	if disp != "hit" || warm.Status != StatusDone {
		t.Fatalf("warm experiment = %+v disposition %q", warm, disp)
	}
	if got := fetchText(t, ts.URL+"/jobs/"+warm.ID+"/result?format=json", 200); got != coldJSON {
		t.Fatal("cached experiment JSON differs")
	}
	if got := fetchText(t, ts.URL+"/jobs/"+warm.ID+"/result?format=text", 200); got != coldText {
		t.Fatal("cached experiment text differs")
	}
}

// TestCoalescingDoesNotDefeatBackpressure: distinct specs still fill the
// queue to a 429, while an identical spec coalesces instead of being
// rejected — even when the queue is full.
func TestCoalescingDoesNotDefeatBackpressure(t *testing.T) {
	s, ts := testServer(t, Config{Cache: testStore(t), QueueDepth: 1, Workers: 1})
	gateFlights(t, s)

	submit := func(seed int) (*http.Response, jobView) {
		var v jobView
		body := []byte(fmt.Sprintf(`{"kind":"sim","sim":{"topology":"ai-processor","cycles":1500,"seed":%d}}`, seed))
		resp := doJSON(t, "POST", ts.URL+"/jobs", body, &v)
		return resp, v
	}
	// Seed 1 occupies the (gated) worker; seed 2 fills the depth-1 queue.
	first, v1 := submit(1)
	if first.StatusCode != http.StatusAccepted {
		t.Fatalf("first submission: HTTP %d", first.StatusCode)
	}
	waitFor(t, ts.URL, v1.ID, func(st JobStatus) bool { return st == StatusRunning })
	if resp, _ := submit(2); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submission: HTTP %d", resp.StatusCode)
	}
	// A third distinct spec must bounce with Retry-After...
	resp, _ := submit(3)
	if resp.StatusCode != http.StatusTooManyRequests || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("distinct spec on a full queue: HTTP %d (Retry-After %q), want 429",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	// ...but resubmitting an already-admitted spec coalesces, full queue
	// or not: it needs no queue slot.
	resp2, v := submit(2)
	if resp2.StatusCode != http.StatusAccepted || !v.Coalesced {
		t.Fatalf("identical spec on a full queue: HTTP %d (coalesced=%v), want coalesced 202",
			resp2.StatusCode, v.Coalesced)
	}
}

// TestWarmHitLatency is the acceptance floor: serving ref/ai-processor
// from the cache must be at least 100x faster than simulating it. The
// cold run is a single measurement, the warm side takes the best of 50
// full POST+result round trips — the comparison a client actually feels.
func TestWarmHitLatency(t *testing.T) {
	s, ts := testServer(t, Config{Cache: testStore(t)})
	defer s.Shutdown()
	body := []byte(`{"kind":"sim","sim":{"topology":"ai-processor","cycles":60000}}`)

	coldStart := time.Now()
	cold, disp := submitJob(t, ts.URL, body)
	if disp != "miss" {
		t.Fatalf("cold disposition %q", disp)
	}
	waitFor(t, ts.URL, cold.ID, func(st JobStatus) bool { return st == StatusDone })
	coldDur := time.Since(coldStart)

	warmBest := time.Duration(1 << 62)
	for i := 0; i < 50; i++ {
		start := time.Now()
		warm, disp := submitJob(t, ts.URL, body)
		if disp != "hit" || warm.Status != StatusDone {
			t.Fatalf("iteration %d: disposition %q status %s", i, disp, warm.Status)
		}
		fetchText(t, ts.URL+"/jobs/"+warm.ID+"/result?format=csv", 200)
		if d := time.Since(start); d < warmBest {
			warmBest = d
		}
	}
	if coldDur < 100*warmBest {
		t.Fatalf("warm hit %v is only %.1fx faster than the %v cold run, want >= 100x",
			warmBest, float64(coldDur)/float64(warmBest), coldDur)
	}
	t.Logf("cold %v, best warm %v (%.0fx)", coldDur, warmBest, float64(coldDur)/float64(warmBest))
}

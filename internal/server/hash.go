// Content addressing for job results. A simulation is a pure function
// of its normalized spec (PR 5–7 pinned this byte-for-byte), so a
// completed job's output can be stored and served under a stable hash of
// everything that determines it — and ONLY that. Knobs that change how a
// result is computed but not what it is (the partition count, the
// checkpoint cadence) are excluded, so resubmissions that differ only in
// those knobs hit the cache; the spec echoed inside a served result is
// patched back to the submission's own, keeping every body byte-identical
// to a fresh run of exactly that submission.
package server

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"strings"

	"chipletnoc/internal/experiments"
	"chipletnoc/internal/sim"
)

// cacheFormatVersion is folded into every job key. Bump it whenever the
// CachedResult encoding or the rendered result formats change shape, so
// a new daemon never deserializes (or byte-compares against) artifacts
// written by an incompatible one — old entries simply age out as misses.
const cacheFormatVersion = 1

// jobIdentity is the canonical document a job key hashes: a fixed-order
// JSON rendering of the result-determining fields plus the codec
// versions. Field order is fixed by the struct, map-free, so marshaling
// is deterministic.
type jobIdentity struct {
	Format   int    `json:"format"`
	Snapshot int    `json:"snapshot_version"`
	Kind     string `json:"kind"`
	// Sim-job identity. CheckpointEvery, Partitions and Lookahead are
	// deliberately absent: all three are proven behaviour-neutral (the
	// differential suites of PR 5–7 and the superstep suite), so they
	// must not split the cache.
	Topology        string `json:"topology,omitempty"`
	Scale           string `json:"scale,omitempty"`
	Cycles          uint64 `json:"cycles,omitempty"`
	Seed            uint64 `json:"seed,omitempty"`
	MetricsInterval uint64 `json:"metrics_interval,omitempty"`
	Config          string `json:"config,omitempty"`
	// Experiment-job identity.
	Experiment string `json:"experiment,omitempty"`
	// Serving-job identity: the canonical serving document minus the
	// behaviour-neutral partitions/lookahead knobs. Scale is absent on
	// purpose — the document arrives fully defaulted, so scale no longer
	// influences the result.
	Serving string `json:"serving,omitempty"`
}

// JobKey returns the content address of a job's result: a hex SHA-256
// over the canonical identity document. The spec is (re-)normalized
// first, so semantically equal submissions — different JSON key orders,
// defaulted vs explicit fields, identity-excluded knobs — share one key.
func JobKey(spec JobSpec) (string, error) {
	spec, err := spec.Normalize()
	if err != nil {
		return "", err
	}
	id := jobIdentity{
		Format:   cacheFormatVersion,
		Snapshot: sim.SnapshotVersion,
		Kind:     spec.Kind,
	}
	switch spec.Kind {
	case "sim":
		id.Topology = spec.Sim.Topology
		id.Scale = spec.Sim.Scale
		id.Cycles = spec.Sim.Cycles
		id.Seed = spec.Sim.Seed
		id.MetricsInterval = spec.Sim.MetricsInterval
		if id.Config, err = hashableConfig(spec.Sim.Config); err != nil {
			return "", err
		}
	case "experiment":
		id.Experiment = spec.Experiment
		id.Scale = spec.Scale
	case "serving":
		if id.Serving, err = hashableConfig(string(spec.Serving)); err != nil {
			return "", err
		}
	default:
		return "", fmt.Errorf("job kind %q has no content address", spec.Kind)
	}
	doc, err := json.Marshal(id)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%x", sha256.Sum256(doc)), nil
}

// hashableConfig strips the identity-excluded "partitions" and
// "lookahead" knobs from a canonical JSON document — a custom-topology
// config or a serving spec, which spell those knobs identically —
// before hashing. The document arrives already canonical (Normalize
// rendered it), so this only has to drop the behaviour-neutral fields;
// numeric literals ride through as json.Number and are re-rendered
// verbatim.
func hashableConfig(doc string) (string, error) {
	if doc == "" {
		return "", nil
	}
	dec := json.NewDecoder(strings.NewReader(doc))
	dec.UseNumber()
	var v map[string]interface{}
	if err := dec.Decode(&v); err != nil {
		return "", fmt.Errorf("config document: %w", err)
	}
	delete(v, "partitions")
	delete(v, "lookahead")
	out, err := json.Marshal(v)
	if err != nil {
		return "", err
	}
	return string(out), nil
}

// CachedResult is the payload stored under a job key: one completed
// job's full output, from which every response format (JSON, CSV, text)
// re-renders byte-identically. The structure round-trips exactly through
// encoding/json — shortest-form floats, sorted map keys — which is what
// lets a decoded copy serve the same bytes a fresh run would.
type CachedResult struct {
	Kind     string                     `json:"kind"`
	Sim      *experiments.SimResult     `json:"sim,omitempty"`
	Artifact *experiments.Artifact      `json:"artifact,omitempty"`
	Serving  *experiments.ServingResult `json:"serving,omitempty"`
}

// shapeOK checks that exactly the kind-matching payload field is set.
func (c *CachedResult) shapeOK() bool {
	switch c.Kind {
	case "sim":
		return c.Sim != nil && c.Artifact == nil && c.Serving == nil
	case "experiment":
		return c.Artifact != nil && c.Sim == nil && c.Serving == nil
	case "serving":
		return c.Serving != nil && c.Sim == nil && c.Artifact == nil
	}
	return false
}

// Encode renders the payload for the artifact store.
func (c *CachedResult) Encode() ([]byte, error) {
	if !c.shapeOK() {
		return nil, fmt.Errorf("cached result shape does not match kind %q", c.Kind)
	}
	return json.Marshal(c)
}

// DecodeCachedResult parses a stored payload. The artifact store already
// CRC-verified the bytes; this guards the layer above it — a payload
// whose JSON or shape is wrong (format drift, a foreign writer) is an
// error, and callers evict the entry rather than serve it.
func DecodeCachedResult(payload []byte) (*CachedResult, error) {
	var c CachedResult
	if err := json.Unmarshal(payload, &c); err != nil {
		return nil, fmt.Errorf("cached result: %w", err)
	}
	if !c.shapeOK() {
		return nil, fmt.Errorf("cached result shape does not match kind %q", c.Kind)
	}
	return &c, nil
}

// CachedSimResult decodes a sim-job payload and patches the spec echo to
// the (normalized) submission being served: the cached run and the
// submission agree on every identity field, so only identity-excluded
// knobs (checkpoint cadence, the config partitions hint) differ — and
// those must reflect the submission for the body to be byte-identical to
// a fresh run of it. Shared by the daemon's admission path and the CLI's
// -cache-dir.
func CachedSimResult(payload []byte, spec experiments.SimSpec) (*experiments.SimResult, error) {
	c, err := DecodeCachedResult(payload)
	if err != nil {
		return nil, err
	}
	if c.Kind != "sim" {
		return nil, fmt.Errorf("cached result is a %s job, not a sim", c.Kind)
	}
	res := *c.Sim
	res.Spec = spec
	return &res, nil
}

// CachedServingResult decodes a serving-job payload and patches the doc
// echo to the submission's own canonical document. The cached sweep and
// the submission agree on every identity field; only the excluded
// partitions/lookahead knobs can differ, and the echo must reflect the
// submission for the body to be byte-identical to a fresh run of it.
// Shared by the daemon's admission path and the CLI's -cache-dir.
func CachedServingResult(payload []byte, doc string) (*experiments.ServingResult, error) {
	c, err := DecodeCachedResult(payload)
	if err != nil {
		return nil, err
	}
	if c.Kind != "serving" {
		return nil, fmt.Errorf("cached result is a %s job, not a serving sweep", c.Kind)
	}
	res := *c.Serving
	res.Doc = doc
	return &res, nil
}

package server

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"chipletnoc/internal/durable"
	"chipletnoc/internal/experiments"
)

// TestCrashRecoveryE2E is the chaos gate run against the REAL daemon
// binary: a long checkpointing simulation is SIGKILLed mid-run several
// times — including once through a durable-layer crash point, the
// precise instant between staging and rename — and every restarted
// daemon must either resume from the last persisted checkpoint or
// requeue from scratch. Either way the final CSV must be byte-identical
// to an uninterrupted in-process run: crashes may cost time, never
// correctness.
func TestCrashRecoveryE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e crash test builds and repeatedly kills the daemon binary")
	}

	bin := filepath.Join(t.TempDir(), "nocd")
	build := exec.Command("go", "build", "-o", bin, "chipletnoc/cmd/nocd")
	build.Dir = moduleRoot(t)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building nocd: %v\n%s", err, out)
	}

	stateDir := t.TempDir()
	addr := freeAddr(t)
	base := "http://" + addr

	// ~400k cycles ≈ a few seconds of wall clock — long enough that every
	// kill below lands mid-run — checkpointing every 2000 cycles.
	specJSON := `{"kind":"sim","sim":{"topology":"ai-processor","scale":"quick","cycles":400000,"checkpoint_every":2000}}`
	spec, err := ParseJobSpec([]byte(specJSON))
	if err != nil {
		t.Fatal(err)
	}

	daemon := startDaemon(t, bin, addr, stateDir, nil)
	resp, err := http.Post(base+"/jobs", "application/json", strings.NewReader(specJSON))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var v jobView
	json.NewDecoder(resp.Body).Decode(&v)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	jobID := v.ID

	// Round 1 and 2: SIGKILL once the rolling checkpoint has advanced.
	for round := 1; round <= 2; round++ {
		waitCheckpointAdvance(t, base, jobID, round)
		daemon.Process.Kill()
		daemon.Wait()
		daemon = startDaemon(t, bin, addr, stateDir, nil)
		assertJobAlive(t, base, jobID)
	}

	// Round 3: arm a durable-layer crash point so the daemon kills itself
	// exactly between fsyncing the staged checkpoint and renaming it — the
	// worst instant a power cut can choose. Exit code 37 proves the crash
	// point (not an ordinary failure) ended the process.
	waitCheckpointAdvance(t, base, jobID, 3)
	daemon.Process.Kill()
	daemon.Wait()
	// The resumed job checkpoints within milliseconds of boot, so this
	// instance can die before /healthz ever answers — start it without
	// the health gate and just await the self-inflicted exit.
	daemon = exec.Command(bin, "-addr", addr, "-state", stateDir, "-workers", "1")
	daemon.Env = append(os.Environ(), durable.CrashEnv+"=tmp-synced:2")
	daemon.Stdout, daemon.Stderr = os.Stderr, os.Stderr
	if err := daemon.Start(); err != nil {
		t.Fatal(err)
	}
	if err := daemon.Wait(); err == nil {
		t.Fatal("crash-point daemon exited cleanly")
	} else if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != durable.CrashExitCode {
		t.Fatalf("crash-point daemon: %v, want exit code %d", err, durable.CrashExitCode)
	}

	// Final instance: no faults; the job must finish.
	daemon = startDaemon(t, bin, addr, stateDir, nil)
	defer func() {
		daemon.Process.Signal(syscall.SIGTERM)
		daemon.Wait()
	}()
	waitJobStatus(t, base, jobID, StatusDone, 2*time.Minute)

	resp, err = http.Get(base + "/jobs/" + jobID + "/result?format=csv")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := readAll(resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: HTTP %d: %s", resp.StatusCode, got)
	}

	want, err := experiments.RunSim(*spec.Sim, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != want.CSV() {
		t.Errorf("CSV after %d crashes differs from the uninterrupted run (%d vs %d bytes)",
			3, len(got), len(want.CSV()))
	}
}

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above the test directory")
		}
		dir = parent
	}
}

// freeAddr grabs an ephemeral port. The tiny close-to-listen race is
// acceptable in a test.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// startDaemon launches nocd and waits until /healthz answers.
func startDaemon(t *testing.T, bin, addr, stateDir string, extraEnv []string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, "-addr", addr, "-state", stateDir, "-workers", "1")
	cmd.Env = append(os.Environ(), extraEnv...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get("http://" + addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd
			}
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("daemon at %s never became healthy: %v", addr, err)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// waitCheckpointAdvance blocks until the job's reported cycle moves past
// what the previous round saw, proving at least one fresh checkpoint is
// on disk before the next kill.
func waitCheckpointAdvance(t *testing.T, base, id string, round int) {
	t.Helper()
	deadline := time.Now().Add(time.Minute)
	var floor uint64
	for {
		v, ok := pollJob(base, id)
		if ok {
			if floor == 0 && v.Cycle > 0 {
				floor = v.Cycle
			}
			if v.Cycle > floor && floor > 0 {
				return
			}
			if v.Status == StatusDone {
				t.Fatalf("round %d: job finished before the kill — make the job longer", round)
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("round %d: checkpoint never advanced", round)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// assertJobAlive checks a restarted daemon still knows the job.
func assertJobAlive(t *testing.T, base, id string) {
	t.Helper()
	v, ok := pollJob(base, id)
	if !ok {
		t.Fatalf("job %s lost across restart", id)
	}
	if v.Status == StatusFailed {
		t.Fatalf("job %s failed across restart: %s", id, v.Error)
	}
}

func waitJobStatus(t *testing.T, base, id string, want JobStatus, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		v, ok := pollJob(base, id)
		if ok && v.Status == want {
			return
		}
		if ok && v.Status == StatusFailed {
			t.Fatalf("job %s failed: %s", id, v.Error)
		}
		if time.Now().After(deadline) {
			st := "unreachable"
			if ok {
				st = string(v.Status)
			}
			t.Fatalf("job %s stuck in %s (want %s)", id, st, want)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func pollJob(base, id string) (jobView, bool) {
	resp, err := http.Get(base + "/jobs/" + id)
	if err != nil {
		return jobView{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return jobView{}, false
	}
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return jobView{}, false
	}
	return v, true
}

func readAll(resp *http.Response) (string, error) {
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return string(data), err
}

package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"chipletnoc/internal/durable"
	"chipletnoc/internal/experiments"
)

// quickSimSpec returns a normalized quick sim spec — what a POSTed
// {"kind":"sim","sim":{"topology":"ai-processor","scale":"quick"}}
// parses to.
func quickSimSpec(t *testing.T) JobSpec {
	t.Helper()
	spec, err := ParseJobSpec([]byte(`{"kind":"sim","sim":{"topology":"ai-processor","scale":"quick"}}`))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// writeRecord persists a valid sealed job record the way the daemon
// itself would.
func writeRecord(t *testing.T, dir, id string, spec JobSpec) {
	t.Helper()
	rec, err := json.Marshal(persistedJob{ID: id, Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	if err := durable.WriteSealed(filepath.Join(dir, id+jobRecordSuffix), rec, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryQuarantinesCorruptRecord: a damaged job record must not
// prevent startup; it moves to quarantine/ beside a .reason note and
// its checkpoint goes with it.
func TestRecoveryQuarantinesCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "job-0.job"), []byte("not a sealed envelope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "job-0.ckpt"), []byte("whatever"), 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := New(Config{StateDir: dir})
	if err != nil {
		t.Fatalf("daemon refused to start on damaged state: %v", err)
	}
	defer s.Shutdown()

	rec := s.Recovery()
	if rec.Quarantined != 1 || rec.Resumed != 0 || rec.Requeued != 0 {
		t.Fatalf("recovery = %+v, want exactly 1 quarantined", rec)
	}
	for _, name := range []string{"job-0.job", "job-0.ckpt", "job-0.job.reason"} {
		if _, err := os.Stat(filepath.Join(dir, quarantineDirName, name)); err != nil {
			t.Errorf("quarantine/%s missing: %v", name, err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "job-0.job")); !os.IsNotExist(err) {
		t.Error("damaged record still in the state directory")
	}
}

// TestRecoveryRequeuesCorruptCheckpoint is the core acceptance property:
// record intact, checkpoint rotted → the checkpoint is quarantined and
// the job reruns from cycle 0, finishing with bytes identical to an
// uninterrupted run (the simulator is deterministic).
func TestRecoveryRequeuesCorruptCheckpoint(t *testing.T) {
	dir := t.TempDir()
	spec := quickSimSpec(t)
	writeRecord(t, dir, "job-0", spec)
	if err := os.WriteFile(filepath.Join(dir, "job-0.ckpt"), []byte("torn checkpoint bytes"), 0o644); err != nil {
		t.Fatal(err)
	}

	s, ts := testServer(t, Config{StateDir: dir})
	defer s.Shutdown()

	rec := s.Recovery()
	if rec.Requeued != 1 || rec.Quarantined != 0 {
		t.Fatalf("recovery = %+v, want exactly 1 requeued", rec)
	}
	if _, err := os.Stat(filepath.Join(dir, quarantineDirName, "job-0.ckpt")); err != nil {
		t.Errorf("rotted checkpoint not quarantined: %v", err)
	}

	waitFor(t, ts.URL, "job-0", func(st JobStatus) bool { return st == StatusDone })
	got := fetchText(t, ts.URL+"/jobs/job-0/result?format=csv", http.StatusOK)

	want, err := experiments.RunSim(*spec.Sim, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != want.CSV() {
		t.Error("requeued run's CSV differs from an uninterrupted run")
	}
}

// TestRecoveryResumesValidCheckpoint: intact record + intact checkpoint
// counts as resumed, and the job continues to the same final bytes.
func TestRecoveryResumesValidCheckpoint(t *testing.T) {
	dir := t.TempDir()
	spec := quickSimSpec(t)

	// Produce a genuine mid-run checkpoint by running with a rolling
	// checkpoint callback.
	var ckpt []byte
	var at uint64
	ctl := &experiments.SimControl{OnCheckpoint: func(data []byte, cycle uint64) error {
		if ckpt == nil {
			ckpt = append([]byte(nil), data...)
			at = cycle
		}
		return nil
	}}
	ckptSpec := *spec.Sim
	ckptSpec.CheckpointEvery = 500
	want, err := experiments.RunSim(ckptSpec, nil, ctl)
	if err != nil {
		t.Fatal(err)
	}
	if ckpt == nil {
		t.Fatal("quick run produced no checkpoint")
	}

	recSpec := spec
	recSpec.Sim = &ckptSpec
	writeRecord(t, dir, "job-0", recSpec)
	if err := durable.WriteFile(filepath.Join(dir, "job-0.ckpt"), ckpt, 0o644); err != nil {
		t.Fatal(err)
	}

	s, ts := testServer(t, Config{StateDir: dir})
	defer s.Shutdown()
	if rec := s.Recovery(); rec.Resumed != 1 {
		t.Fatalf("recovery = %+v, want 1 resumed (checkpoint at cycle %d)", rec, at)
	}
	waitFor(t, ts.URL, "job-0", func(st JobStatus) bool { return st == StatusDone })
	got := fetchText(t, ts.URL+"/jobs/job-0/result?format=csv", http.StatusOK)
	if got != want.CSV() {
		t.Error("resumed run's CSV differs from the uninterrupted run")
	}
}

// TestRecoveryCleansDebris: torn temp files are deleted, legacy .json
// records and orphaned checkpoints are quarantined.
func TestRecoveryCleansDebris(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"job-1.ckpt.tmp": "half-written stage",
		"job-2.json":     `{"id":"job-2"}`,
		"job-3.ckpt":     "checkpoint without a record",
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s, err := New(Config{StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()

	if _, err := os.Stat(filepath.Join(dir, "job-1.ckpt.tmp")); !os.IsNotExist(err) {
		t.Error("torn temp file survived recovery")
	}
	for _, name := range []string{"job-2.json", "job-3.ckpt"} {
		if _, err := os.Stat(filepath.Join(dir, quarantineDirName, name)); err != nil {
			t.Errorf("quarantine/%s missing: %v", name, err)
		}
	}
	if rec := s.Recovery(); rec.Quarantined != 2 {
		t.Fatalf("recovery = %+v, want 2 quarantined", rec)
	}
}

// TestRecoveryAdvancesNextID: new submissions must not collide with
// recovered job IDs.
func TestRecoveryAdvancesNextID(t *testing.T) {
	dir := t.TempDir()
	writeRecord(t, dir, "job-7", quickSimSpec(t))
	s, err := New(Config{StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	job, err := s.Submit(quickSimSpec(t))
	if err != nil {
		t.Fatalf("submit rejected: %v", err)
	}
	if job.ID != "job-8" {
		t.Fatalf("next submission got %s, want job-8", job.ID)
	}
}

// TestWorkerPanicIsolated: a panicking job is marked failed with the
// stack attached and the daemon keeps serving — the next job runs on
// the same worker pool.
func TestWorkerPanicIsolated(t *testing.T) {
	poison := true
	testPanicHook = func(job *Job) {
		if poison {
			poison = false
			panic("injected workload panic")
		}
	}
	defer func() { testPanicHook = nil }()

	s, ts := testServer(t, Config{Workers: 1})
	defer s.Shutdown()

	var v1 jobView
	doJSON(t, "POST", ts.URL+"/jobs", []byte(`{"kind":"sim","sim":{"topology":"ai-processor","scale":"quick"}}`), &v1)
	got := waitFor(t, ts.URL, v1.ID, func(st JobStatus) bool { return st == StatusFailed })
	if !strings.Contains(got.Error, "worker panic: injected workload panic") {
		t.Fatalf("job error %q does not carry the panic", got.Error)
	}
	if !strings.Contains(got.Error, "runJob") && !strings.Contains(got.Error, "goroutine") {
		t.Fatalf("job error %q does not carry a stack", got.Error)
	}

	// The daemon survived: the very next job completes normally.
	var v2 jobView
	doJSON(t, "POST", ts.URL+"/jobs", []byte(`{"kind":"sim","sim":{"topology":"ai-processor","scale":"quick"}}`), &v2)
	waitFor(t, ts.URL, v2.ID, func(st JobStatus) bool { return st == StatusDone })
}

// TestHandlerPanicRecovered: a panic inside an HTTP handler answers 500
// JSON instead of killing the connection.
func TestHandlerPanicRecovered(t *testing.T) {
	h := recoverMiddleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("handler bug")
	}))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/jobs", nil))
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("HTTP %d, want 500", rr.Code)
	}
	var body map[string]string
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatalf("non-JSON 500 body %q: %v", rr.Body.Bytes(), err)
	}
	if !strings.Contains(body["error"], "handler bug") {
		t.Fatalf("500 body %v does not name the panic", body)
	}
}

// TestJobDeadlineFailsSimJob: a sim job over its wall-clock budget stops
// at the next interrupt poll and reports a deadline failure.
func TestJobDeadlineFailsSimJob(t *testing.T) {
	s, ts := testServer(t, Config{JobDeadline: time.Nanosecond})
	defer s.Shutdown()
	var v jobView
	doJSON(t, "POST", ts.URL+"/jobs", []byte(`{"kind":"sim","sim":{"topology":"ai-processor","scale":"quick"}}`), &v)
	got := waitFor(t, ts.URL, v.ID, func(st JobStatus) bool { return st == StatusFailed })
	if !strings.Contains(got.Error, "wall-clock deadline") {
		t.Fatalf("job error %q does not mention the deadline", got.Error)
	}
}

// TestSubmitBodyTooLarge: satellite regression test — an over-limit
// submission must answer 413 with a JSON error, not 400 or a panic
// (http.MaxBytesReader used to be called with a nil ResponseWriter).
func TestSubmitBodyTooLarge(t *testing.T) {
	s, ts := testServer(t, Config{})
	defer s.Shutdown()
	big := append([]byte(`{"kind":"sim","sim":{"config":"`), bytes.Repeat([]byte{'x'}, maxJobSpecBytes+1024)...)
	big = append(big, []byte(`"}}`)...)
	var body map[string]string
	resp := doJSON(t, "POST", ts.URL+"/jobs", big, &body)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("HTTP %d, want 413", resp.StatusCode)
	}
	if !strings.Contains(body["error"], "limit") {
		t.Fatalf("413 body %v does not explain the limit", body)
	}
}

// TestHealthAndReady: /healthz always answers while up; /readyz carries
// queue shape and the recovery report, and flips to 503 on drain.
func TestHealthAndReady(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "job-0.job"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, ts := testServer(t, Config{StateDir: dir, QueueDepth: 5, Workers: 3})

	var h healthView
	if resp := doJSON(t, "GET", ts.URL+"/healthz", nil, &h); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", resp.StatusCode)
	}
	if h.Status != "ok" {
		t.Fatalf("healthz status %q", h.Status)
	}

	var rv readyView
	if resp := doJSON(t, "GET", ts.URL+"/readyz", nil, &rv); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz: HTTP %d", resp.StatusCode)
	}
	if rv.Status != "ready" || rv.QueueCapacity != 5 || rv.Workers != 3 {
		t.Fatalf("readyz = %+v", rv)
	}
	if rv.Recovery.Quarantined != 1 {
		t.Fatalf("readyz recovery = %+v, want the quarantined record visible", rv.Recovery)
	}

	s.Shutdown()
	resp := doJSON(t, "GET", ts.URL+"/readyz", nil, &rv)
	if resp.StatusCode != http.StatusServiceUnavailable || rv.Status != "draining" {
		t.Fatalf("draining readyz: HTTP %d, status %q", resp.StatusCode, rv.Status)
	}
}

// TestSubmitPersistsRecordAtAdmission: the record hits disk before the
// 202 goes out, so even a SIGKILL right after acceptance requeues the
// job on restart.
func TestSubmitPersistsRecordAtAdmission(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{StateDir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	// Plug the single worker so the submitted job stays queued.
	testPanicHook = func(job *Job) { time.Sleep(50 * time.Millisecond) }
	defer func() { testPanicHook = nil }()

	job, err := s.Submit(quickSimSpec(t))
	if err != nil {
		t.Fatalf("submit rejected: %v", err)
	}
	payload, rerr := durable.ReadSealed(filepath.Join(dir, job.ID+jobRecordSuffix))
	if rerr != nil {
		t.Fatalf("admission record unreadable: %v", rerr)
	}
	var p persistedJob
	if err := json.Unmarshal(payload, &p); err != nil || p.ID != job.ID {
		t.Fatalf("admission record %q: %v", payload, err)
	}
}

module chipletnoc

go 1.22
